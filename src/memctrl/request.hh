/**
 * @file
 * Memory requests exchanged between the cache hierarchy / cores and
 * the memory controller.
 */

#ifndef REFSCHED_MEMCTRL_REQUEST_HH
#define REFSCHED_MEMCTRL_REQUEST_HH

#include <cstdint>
#include <string>

#include "dram/address_mapping.hh"
#include "simcore/types.hh"

namespace refsched
{
class Callee;
}

namespace refsched::memctrl
{

/** A single cache-line-sized DRAM transaction. */
struct Request
{
    enum class Type { Read, Write };

    Addr paddr = 0;
    Type type = Type::Read;
    int coreId = -1;
    Pid pid = -1;

    /** Tick the request entered the controller queue. */
    Tick enqueuedAt = 0;

    /**
     * Core-local tick at which the issuer generated the request.
     * Under core-cluster lanes the router merges the per-core
     * staging boxes at each window boundary by (issueTick, coreId,
     * staging order) -- a partition-invariant key, so any cluster
     * assignment and worker count delivers identical channel
     * arrival order.  Unused (0) on the legacy paths.
     */
    Tick issueTick = 0;

    /** Pre-decoded DRAM coordinates (filled by the controller). */
    dram::DramCoord coord;

    /** Monotonic id for deterministic tie-breaking and debugging. */
    std::uint64_t seq = 0;

    /**
     * Intrusive completion record for reads: at the tick the data
     * burst finishes on the bus, the controller schedules
     * `completion->fire(dataAt, cookie0, cookie1)` directly on the
     * event queue -- no closure, no heap allocation on the hot path.
     * The receiver owns the meaning of the two cookies (cpu::Core
     * packs its epoch and instruction index).  Null for writes
     * (posted) and for fire-and-forget traffic.
     */
    Callee *completion = nullptr;
    std::uint64_t cookie0 = 0;
    std::uint64_t cookie1 = 0;

    /** Set once the request observed its bank busy refreshing. */
    bool blockedByRefresh = false;

    /**
     * Out-parameter mirror of blockedByRefresh for issuers whose
     * completion cookies are already spoken for (the open-loop
     * serving injector packs slot/line indices).  When non-null the
     * controller stores the final blocked state here at read
     * completion; the storage must stay valid until then, and each
     * in-flight request needs its own element -- under the sharded
     * kernel the owning channel lane writes it, so sharing one flag
     * across channels would race.  Forwarded reads (served from a
     * queued write) bypass the DRAM banks entirely and leave the
     * issuer's cleared flag untouched.
     */
    std::uint8_t *blockedOut = nullptr;

    /** Set when the controller issued an ACT on this request's
     *  behalf (row-buffer miss accounting). */
    bool neededAct = false;

    bool isRead() const { return type == Type::Read; }
    bool isWrite() const { return type == Type::Write; }

    std::string describe() const;
};

} // namespace refsched::memctrl

#endif // REFSCHED_MEMCTRL_REQUEST_HH
