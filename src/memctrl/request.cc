#include "memctrl/request.hh"

#include <sstream>

namespace refsched::memctrl
{

std::string
Request::describe() const
{
    std::ostringstream os;
    os << (isRead() ? "R" : "W") << " pa=0x" << std::hex << paddr
       << std::dec << " ch=" << coord.channel << " ra=" << coord.rank
       << " ba=" << coord.bank << " row=" << coord.row
       << " core=" << coreId << " pid=" << pid << " seq=" << seq;
    return os.str();
}

} // namespace refsched::memctrl
