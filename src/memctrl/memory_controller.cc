#include "memctrl/memory_controller.hh"

#include <algorithm>
#include <bit>

#include "simcore/logging.hh"

namespace refsched::memctrl
{

using dram::Bank;
using dram::RefreshCommand;

MemoryController::Channel::Channel(const dram::DramDeviceConfig &cfg,
                                   const ControllerParams &params)
    : readQ(params.readQueueCapacity, cfg.org.banksTotal()),
      writeQ(params.writeQueueCapacity, cfg.org.banksTotal())
{
    ranks.assign(static_cast<std::size_t>(cfg.org.ranksPerChannel),
                 dram::Rank(cfg.org));
    const std::size_t banksTotal =
        static_cast<std::size_t>(cfg.org.banksTotal());
    bank.reserve(banksTotal);
    for (auto &r : ranks)
        for (auto &b : r.banks)
            bank.push_back(&b);
    readHitCnt.assign(banksTotal, 0);
    writeHitCnt.assign(banksTotal, 0);
    stats.readLatencyDist.init(
        0.0, 4.0e6 /* ps: 4 us */, 64);
}

MemoryController::MemoryController(
    EventQueue &eq, const dram::DramDeviceConfig &cfg,
    std::unique_ptr<dram::RefreshScheduler> refresh,
    const ControllerParams &params)
    : eq_(eq),
      cfg_(cfg),
      mapping_(cfg.org),
      refresh_(std::move(refresh)),
      params_(params),
      clock_(cfg.timings.tCK),
      epochLength_(cfg.timings.tREFIab)
{
    REFSCHED_ASSERT(refresh_ != nullptr, "null refresh scheduler");
    if (cfg_.org.banksTotal() > 64)
        fatal("controller bank bitmaps support at most 64 banks per "
              "channel, got ", cfg_.org.banksTotal());
    if (params_.writeLowWatermark >= params_.writeHighWatermark)
        fatal("write drain watermarks inverted");
    if (params_.writeHighWatermark > params_.writeQueueCapacity)
        fatal("write high watermark exceeds queue capacity");

    channels_.reserve(static_cast<std::size_t>(cfg_.org.channels));
    for (int ch = 0; ch < cfg_.org.channels; ++ch) {
        channels_.emplace_back(cfg_, params_);
        channels_.back().eq = &eq_;
    }

    // Arm each channel for its first refresh command.
    for (int ch = 0; ch < cfg_.org.channels; ++ch) {
        const Tick due = refresh_->nextDue(ch);
        if (due != kMaxTick)
            scheduleTick(ch, due);
    }
}

bool
MemoryController::enqueue(Request req)
{
    req.coord = mapping_.decompose(req.paddr);
    const int ch = req.coord.channel;
    auto &c = channels_[static_cast<std::size_t>(ch)];
    const Tick now = c.eq->now();

    const int bankIdx = bankIndex(req.coord.rank, req.coord.bank);
    if (req.isRead()) {
        // Forward from a queued write to the same line, if any.
        // Same line implies same bank, so only that bank's write
        // list needs scanning.
        const Addr line = req.paddr & ~(cfg_.org.lineBytes - 1);
        for (auto s = c.writeQ.bankFront(bankIdx);
             s != BankedRequestQueue::kNone;
             s = c.writeQ.nextInBank(s)) {
            const auto &w = c.writeQ.request(s);
            if ((w.paddr & ~(cfg_.org.lineBytes - 1)) == line) {
                ++c.stats.forwardedReads;
                ++c.stats.reads;
                const Tick doneAt = now + cfg_.timings.tCK;
                if (req.completion) {
                    if (completionSink_) {
                        completionSink_->complete(
                            ch, req.coreId, doneAt, *req.completion,
                            req.cookie0, req.cookie1);
                    } else {
                        eq_.schedule(doneAt, *req.completion,
                                     req.cookie0, req.cookie1);
                    }
                }
                c.stats.readLatency.sample(
                    static_cast<double>(cfg_.timings.tCK));
                return true;
            }
        }
        if (c.readQ.full())
            return false;
        req.enqueuedAt = now;
        req.seq = c.nextSeq++;
        const std::uint64_t row = req.coord.row;
        accrueOccupancy(c, now);
        c.readQ.push(std::move(req), bankIdx);
        if (static_cast<double>(c.readQ.size())
            > c.stats.readQPeakDepth.value())
            c.stats.readQPeakDepth.set(
                static_cast<double>(c.readQ.size()));
        noteQueuedRequest(c, bankIdx, row, true, +1);
        REFSCHED_PROBE(
            probe_,
            onMcQueue({now, ch, true, true,
                       static_cast<int>(c.readQ.size()),
                       static_cast<int>(c.writeQ.size()),
                       c.blockedReadsNow}));
    } else {
        if (c.writeQ.full())
            return false;
        req.enqueuedAt = now;
        req.seq = c.nextSeq++;
        const std::uint64_t row = req.coord.row;
        accrueOccupancy(c, now);
        c.writeQ.push(std::move(req), bankIdx);
        if (static_cast<double>(c.writeQ.size())
            > c.stats.writeQPeakDepth.value())
            c.stats.writeQPeakDepth.set(
                static_cast<double>(c.writeQ.size()));
        noteQueuedRequest(c, bankIdx, row, false, +1);
        REFSCHED_PROBE(
            probe_,
            onMcQueue({now, ch, true, false,
                       static_cast<int>(c.readQ.size()),
                       static_cast<int>(c.writeQ.size()),
                       c.blockedReadsNow}));
    }

    scheduleTick(ch, clock_.nextEdgeAtOrAfter(now));
    return true;
}

void
MemoryController::setChannelLane(int channel, EventQueue *lane)
{
    REFSCHED_ASSERT(lane != nullptr, "null channel lane");
    auto &c = channels_[static_cast<std::size_t>(channel)];
    REFSCHED_ASSERT(lane->now() == c.eq->now(),
                    "channel lane migration requires queues in sync");
    // Re-arm a pending tick on the new lane (the constructor arms
    // the first refresh before lanes exist).
    const Tick at = c.tickScheduledAt;
    c.tickEvent.cancel();
    c.eq = lane;
    c.tickScheduledAt = kMaxTick;
    if (at != kMaxTick)
        scheduleTick(channel, at);
}

void
MemoryController::requestRetryNotification(std::function<void()> cb)
{
    retryWaiters_.push_back(std::move(cb));
}

void
MemoryController::notifyRetry()
{
    if (retryWaiters_.empty())
        return;
    std::vector<std::function<void()>> waiters;
    waiters.swap(retryWaiters_);
    for (auto &w : waiters)
        w();
}

int
MemoryController::queuedToBank(int channel, int rank, int bank) const
{
    const auto &c = channels_[static_cast<std::size_t>(channel)];
    return c.readQ.bankCount(bankIndex(rank, bank));
}

double
MemoryController::channelUtilization(int channel) const
{
    return channels_[static_cast<std::size_t>(channel)].lastUtil;
}

std::size_t
MemoryController::readQueueSize(int channel) const
{
    return channels_[static_cast<std::size_t>(channel)].readQ.size();
}

std::size_t
MemoryController::writeQueueSize(int channel) const
{
    return channels_[static_cast<std::size_t>(channel)].writeQ.size();
}

int
MemoryController::blockedReadsNow(int channel) const
{
    return channels_[static_cast<std::size_t>(channel)]
        .blockedReadsNow;
}

std::size_t
MemoryController::refreshBacklog(int channel) const
{
    return channels_[static_cast<std::size_t>(channel)]
        .pendingRefreshes.size();
}

bool
MemoryController::refreshEngagedNow(int channel) const
{
    return channels_[static_cast<std::size_t>(channel)]
        .refreshEngaged;
}

void
MemoryController::accrueOccupancy(Channel &c, Tick now)
{
    if (now <= c.occMark)
        return;
    const double dt = static_cast<double>(now - c.occMark);
    c.stats.readQOccIntegral +=
        dt * static_cast<double>(c.readQ.size());
    c.stats.writeQOccIntegral +=
        dt * static_cast<double>(c.writeQ.size());
    c.occMark = now;
}

double
MemoryController::readQueueOccupancyIntegral(int channel) const
{
    const auto &c = channels_[static_cast<std::size_t>(channel)];
    double v = c.stats.readQOccIntegral.value();
    const Tick now = c.eq->now();
    if (now > c.occMark)
        v += static_cast<double>(now - c.occMark)
            * static_cast<double>(c.readQ.size());
    return v;
}

double
MemoryController::writeQueueOccupancyIntegral(int channel) const
{
    const auto &c = channels_[static_cast<std::size_t>(channel)];
    double v = c.stats.writeQOccIntegral.value();
    const Tick now = c.eq->now();
    if (now > c.occMark)
        v += static_cast<double>(now - c.occMark)
            * static_cast<double>(c.writeQ.size());
    return v;
}

std::size_t
MemoryController::readQueuePeakDepth(int channel) const
{
    return static_cast<std::size_t>(
        channelStats(channel).readQPeakDepth.value());
}

std::size_t
MemoryController::writeQueuePeakDepth(int channel) const
{
    return static_cast<std::size_t>(
        channelStats(channel).writeQPeakDepth.value());
}

void
MemoryController::resetOccupancyMarks()
{
    for (auto &c : channels_) {
        c.occMark = c.eq->now();
        c.stats.readQPeakDepth.set(
            static_cast<double>(c.readQ.size()));
        c.stats.writeQPeakDepth.set(
            static_cast<double>(c.writeQ.size()));
    }
}

const dram::Bank &
MemoryController::bank(int channel, int rank, int bankIdx) const
{
    const auto &c = channels_[static_cast<std::size_t>(channel)];
    return c.ranks[static_cast<std::size_t>(rank)]
        .banks[static_cast<std::size_t>(bankIdx)];
}

bool
MemoryController::draining(int channel) const
{
    return channels_[static_cast<std::size_t>(channel)].draining;
}

void
MemoryController::scheduleTick(int ch, Tick when)
{
    auto &c = channels_[static_cast<std::size_t>(ch)];
    when = clock_.nextEdgeAtOrAfter(std::max(when, c.eq->now()));
    if (c.tickEvent.pending() && c.tickScheduledAt <= when)
        return;
    c.tickEvent.cancel();
    c.tickScheduledAt = when;
    c.tickEvent = c.eq->schedule(
        when, *this, static_cast<std::uint64_t>(ch), 0,
        EventPriority::ClockEdge);
}

void
MemoryController::rollUtilizationEpoch(Channel &c)
{
    const Tick now = c.eq->now();
    while (now >= c.epochStart + epochLength_) {
        c.lastUtil = std::min(
            1.0, static_cast<double>(c.busyTicks)
                     / static_cast<double>(epochLength_));
        c.busyTicks = 0;
        c.epochStart += epochLength_;
    }
}

void
MemoryController::harvestDueRefreshes(Channel &c, int ch)
{
    const Tick now = c.eq->now();
    while (refresh_->nextDue(ch) <= now) {
        RefreshCommand cmd = refresh_->pop(ch, *this);
        if (cmd.tRFC == 0 || cmd.rows == 0) {
            ++c.stats.refreshNoops;
            continue;
        }
        c.pendingRefreshes.push_back(cmd);
    }
}

bool
MemoryController::frozenByRefresh(const Channel &c, int rank,
                                  int bank) const
{
    // Deferred (not yet engaged) refreshes do not block traffic --
    // that is the whole point of elastic postponement.  Only the
    // committed front command freezes its targets; the target is
    // cached on the channel when the engine engages.
    return (c.frozenMask >> bankIndex(rank, bank)) & 1;
}

void
MemoryController::noteQueuedRequest(Channel &c, int bankIdx,
                                    std::uint64_t row, bool isRead,
                                    int delta)
{
    const dram::Bank &b = *c.bank[static_cast<std::size_t>(bankIdx)];
    if (!b.isOpen() || b.openRow != static_cast<std::int64_t>(row))
        return;
    auto &cnt = isRead ? c.readHitCnt : c.writeHitCnt;
    auto &mask = isRead ? c.readHitMask : c.writeHitMask;
    auto &n = cnt[static_cast<std::size_t>(bankIdx)];
    n = static_cast<std::uint16_t>(static_cast<int>(n) + delta);
    if (n == 0)
        mask &= ~(1ULL << bankIdx);
    else
        mask |= 1ULL << bankIdx;
}

void
MemoryController::mcActivate(Channel &c, int bankIdx,
                             std::uint64_t row,
                             const dram::DramTimings &t)
{
    dram::Bank &b = *c.bank[static_cast<std::size_t>(bankIdx)];
    b.activate(c.eq->now(), static_cast<std::int64_t>(row), t);
    c.openMask |= 1ULL << bankIdx;

    // Recompute this bank's hit counts: the requests matching the
    // newly opened row are exactly the hit candidates now.
    const auto recount = [&](const BankedRequestQueue &q) {
        std::uint16_t n = 0;
        for (auto s = q.bankFront(bankIdx);
             s != BankedRequestQueue::kNone; s = q.nextInBank(s)) {
            if (q.request(s).coord.row == row)
                ++n;
        }
        return n;
    };
    const std::uint64_t bit = 1ULL << bankIdx;
    const std::uint16_t r = recount(c.readQ);
    const std::uint16_t w = recount(c.writeQ);
    c.readHitCnt[static_cast<std::size_t>(bankIdx)] = r;
    c.writeHitCnt[static_cast<std::size_t>(bankIdx)] = w;
    c.readHitMask = r ? (c.readHitMask | bit) : (c.readHitMask & ~bit);
    c.writeHitMask =
        w ? (c.writeHitMask | bit) : (c.writeHitMask & ~bit);
}

void
MemoryController::mcPrecharge(Channel &c, int bankIdx,
                              const dram::DramTimings &t)
{
    dram::Bank &b = *c.bank[static_cast<std::size_t>(bankIdx)];
    b.precharge(c.eq->now(), t);
    const std::uint64_t bit = 1ULL << bankIdx;
    c.openMask &= ~bit;
    c.readHitCnt[static_cast<std::size_t>(bankIdx)] = 0;
    c.writeHitCnt[static_cast<std::size_t>(bankIdx)] = 0;
    c.readHitMask &= ~bit;
    c.writeHitMask &= ~bit;
}

bool
MemoryController::checkHitBitmapInvariant(int channel,
                                          std::string *why) const
{
    const auto &c = channels_[static_cast<std::size_t>(channel)];
    auto fail = [&](const std::string &msg) {
        if (why)
            *why = msg;
        return false;
    };

    std::uint64_t openMask = 0;
    for (int bi = 0; bi < cfg_.org.banksTotal(); ++bi) {
        const dram::Bank &b = *c.bank[static_cast<std::size_t>(bi)];
        if (b.isOpen())
            openMask |= 1ULL << bi;
        const auto naive = [&](const BankedRequestQueue &q) {
            std::uint16_t n = 0;
            for (auto s = q.bankFront(bi);
                 s != BankedRequestQueue::kNone;
                 s = q.nextInBank(s)) {
                if (b.isOpen()
                    && static_cast<std::int64_t>(
                           q.request(s).coord.row)
                        == b.openRow) {
                    ++n;
                }
            }
            return n;
        };
        const std::uint16_t r = naive(c.readQ);
        const std::uint16_t w = naive(c.writeQ);
        if (r != c.readHitCnt[static_cast<std::size_t>(bi)])
            return fail("read hit count mismatch on bank "
                        + std::to_string(bi));
        if (w != c.writeHitCnt[static_cast<std::size_t>(bi)])
            return fail("write hit count mismatch on bank "
                        + std::to_string(bi));
        const std::uint64_t bit = 1ULL << bi;
        if (static_cast<bool>(c.readHitMask & bit) != (r != 0))
            return fail("read hit mask mismatch on bank "
                        + std::to_string(bi));
        if (static_cast<bool>(c.writeHitMask & bit) != (w != 0))
            return fail("write hit mask mismatch on bank "
                        + std::to_string(bi));
    }
    if (openMask != c.openMask)
        return fail("open-bank mask mismatch");
    return true;
}

bool
MemoryController::demandQueuedForRefresh(
    const Channel &c, const dram::RefreshCommand &cmd) const
{
    if (cmd.isAllBank()) {
        return c.readQ.anyOccupiedInRange(
            cmd.rank * cfg_.org.banksPerRank, cfg_.org.banksPerRank);
    }
    return c.readQ.bankCount(bankIndex(cmd.rank, cmd.bank)) > 0;
}

bool
MemoryController::refreshEngineStep(Channel &c, int ch, Tick &wake)
{
    if (c.pendingRefreshes.empty())
        return false;

    const Tick now = c.eq->now();
    auto cand = [&](Tick t) {
        if (t > now)
            wake = std::min(wake, t);
    };
    RefreshCommand &cmd = c.pendingRefreshes.front();

    // Elastic postponement: hold the refresh while demand reads are
    // queued for its banks, unless the backlog forces issue.  A
    // force-issued refresh is also exempt from pausing -- otherwise
    // saturating traffic could starve refresh indefinitely.
    if (!c.refreshEngaged) {
        const bool forced =
            c.pendingRefreshes.size() >= params_.maxPostponedRefreshes;
        if (!forced && demandQueuedForRefresh(c, cmd))
            return false;
        c.refreshEngaged = true;
        c.refreshForced = forced;
        c.frozenRank = cmd.rank;
        c.frozenBank = cmd.bank;
        const int rankBase = cmd.rank * cfg_.org.banksPerRank;
        c.frozenMask = cmd.bank == RefreshCommand::kAllBanksInRank
            ? (((1ULL << cfg_.org.banksPerRank) - 1) << rankBase)
            : (1ULL << (rankBase + cmd.bank));
    }

    auto &rank = c.ranks[static_cast<std::size_t>(cmd.rank)];

    const auto &t = cfg_.timings;

    auto tryStep = [&](Bank &b, [[maybe_unused]] int bankInRank) -> int {
        // Returns: 0 = ready, 1 = issued PRE (slot consumed),
        //          2 = waiting (earliest-progress tick recorded).
        if (b.underRefresh(now)) {
            cand(b.refreshingUntil);
            return 2;
        }
        if (b.isOpen()) {
            if (now >= b.preAllowedAt) {
                REFSCHED_PROBE(
                    probe_,
                    onDramCommand({now, validate::DramOp::Pre, ch,
                                   cmd.rank, bankInRank,
                                   static_cast<std::uint64_t>(
                                       b.openRow),
                                   0}));
                mcPrecharge(c, bankIndex(cmd.rank, bankInRank), t);
                return 1;
            }
            cand(b.preAllowedAt);
            return 2;
        }
        return 0;
    };

    if (cmd.isAllBank()) {
        bool allReady = true;
        for (std::size_t bi = 0; bi < rank.banks.size(); ++bi) {
            const int s =
                tryStep(rank.banks[bi], static_cast<int>(bi));
            if (s == 1)
                return true;  // one PRE issued this cycle
            if (s == 2)
                allReady = false;
        }
        if (rank.underRefresh(now)) {
            cand(rank.refreshingUntil);
            return false;
        }
        if (!allReady)
            return false;
        REFSCHED_PROBE(
            probe_,
            onDramCommand({now, validate::DramOp::RefAllBank, ch,
                           cmd.rank, dram::RefreshCommand::kAllBanksInRank,
                           cmd.rows, now + cmd.tRFC}));
        rank.startAllBankRefresh(now, cmd.tRFC);
        for (auto &b : rank.banks)
            b.rowsRefreshedInWindow += cmd.rows;
        c.stats.rowsRefreshed +=
            static_cast<double>(cmd.rows * rank.banks.size());
        c.stats.energyRefreshPj += params_.energy.refreshRowPj
            * static_cast<double>(cmd.rows * rank.banks.size());
    } else {
        auto &b = rank.banks[static_cast<std::size_t>(cmd.bank)];
        const int s = tryStep(b, cmd.bank);
        if (s == 1)
            return true;
        if (s == 2)
            return false;
        REFSCHED_PROBE(
            probe_,
            onDramCommand({now, validate::DramOp::RefPerBank, ch,
                           cmd.rank, cmd.bank, cmd.rows,
                           now + cmd.tRFC}));
        b.startRefresh(now, cmd.tRFC, cmd.rows,
                       params_.refreshPausing && !c.refreshForced);
        b.rowsRefreshedInWindow += cmd.rows;
        c.stats.rowsRefreshed += static_cast<double>(cmd.rows);
        c.stats.energyRefreshPj += params_.energy.refreshRowPj
            * static_cast<double>(cmd.rows);
    }

    ++c.stats.refreshCommands;
    c.pendingRefreshes.pop_front();
    c.refreshEngaged = false;
    c.frozenRank = -1;
    c.frozenBank = -2;
    c.frozenMask = 0;
    (void)ch;
    return true;
}

void
MemoryController::completeRead(Channel &c, Request &req, Tick dataAt)
{
    const auto latency = static_cast<double>(dataAt - req.enqueuedAt);
    c.stats.readLatency.sample(latency);
    c.stats.readLatencyDist.sample(latency);
    c.stats.readQueueWait.sample(
        static_cast<double>(c.eq->now() - req.enqueuedAt));
    c.stats.readQueueWaitHist.sample(
        static_cast<double>(c.eq->now() - req.enqueuedAt));
    if (req.blockedByRefresh) {
        ++c.stats.readsBlockedByRefresh;
        c.stats.readLatencyBlocked.sample(latency);
        --c.blockedReadsNow;
    } else {
        c.stats.readLatencyClean.sample(latency);
    }
    if (req.blockedOut)
        *req.blockedOut = req.blockedByRefresh ? 1 : 0;

    // Intrusive completion: the (callee, cookies) triple goes into
    // the event slot as plain data, so the hottest path in the
    // simulator schedules without allocating.
    if (req.completion) {
        if (completionSink_) {
            completionSink_->complete(req.coord.channel, req.coreId,
                                      dataAt, *req.completion,
                                      req.cookie0, req.cookie1);
        } else {
            eq_.schedule(dataAt, *req.completion, req.cookie0,
                         req.cookie1);
        }
    }
}

bool
MemoryController::serveQueue(Channel &c, int ch, BankedRequestQueue &q,
                             bool isWriteQueue, Tick &wake)
{
    if (q.empty())
        return false;

    constexpr auto kNone = BankedRequestQueue::kNone;
    const Tick now = c.eq->now();
    const auto &t = cfg_.timings;
    const int banksPerRank = cfg_.org.banksPerRank;

    auto cand = [&](Tick when) {
        if (when > now)
            wake = std::min(wake, when);
    };

    auto bankState = [&](int bankIdx) -> Bank & {
        return *c.bank[static_cast<std::size_t>(bankIdx)];
    };

    auto bankBlocked = [&](int bankIdx) {
        const Bank &b = bankState(bankIdx);
        if (b.underRefresh(now)) {
            cand(b.refreshingUntil);
            return true;
        }
        // Frozen banks unblock through refresh-engine progress; the
        // engine folds its own earliest-progress tick into the wake.
        return ((c.frozenMask >> bankIdx) & 1) != 0;
    };

    // Track refresh interference on the oldest request.  Blocked
    // time accrues as an interval at the *next* tick (now - mark):
    // between two controller ticks the blocked state cannot change,
    // so the interval equals what per-edge polling would have
    // counted.
    {
        Request &front = q.request(q.front());
        const int frontBank =
            bankIndex(front.coord.rank, front.coord.bank);
        if (bankBlocked(frontBank)) {
            if (!isWriteQueue && !front.blockedByRefresh)
                ++c.blockedReadsNow;
            front.blockedByRefresh = true;
            c.blockedMark = now;
            c.blockedMarkValid = true;

            // Refresh Pausing: free the bank at the next row boundary
            // and re-queue the unfinished rows.
            if (params_.refreshPausing && !isWriteQueue) {
                const auto &coord = front.coord;
                Bank &fb = bankState(frontBank);
                const auto remaining = fb.pauseRefresh(now);
                if (remaining > 0) {
                    REFSCHED_PROBE(
                        probe_,
                        onDramCommand({now, validate::DramOp::RefPause,
                                       ch, coord.rank, coord.bank,
                                       static_cast<std::uint64_t>(
                                           remaining),
                                       fb.refreshingUntil}));
                    fb.rowsRefreshedInWindow -= remaining;
                    c.stats.rowsRefreshed -=
                        static_cast<double>(remaining);
                    c.stats.energyRefreshPj -=
                        params_.energy.refreshRowPj
                        * static_cast<double>(remaining);
                    ++c.stats.refreshPauses;

                    dram::RefreshCommand resume;
                    resume.rank = coord.rank;
                    resume.bank = coord.bank;
                    resume.rows = remaining;
                    resume.tRFC = static_cast<Tick>(remaining)
                        * (t.tRFCpb / t.rowsPerRefresh);
                    c.pendingRefreshes.push_back(resume);
                }
            }
        }
    }

    auto issueCas = [&](std::uint32_t slot) {
        Request &r = q.request(slot);
        const int bankIdx = bankIndex(r.coord.rank, r.coord.bank);
        Bank &b = bankState(bankIdx);
        if (!r.neededAct)
            ++c.stats.rowHits;
        else
            ++c.stats.rowMisses;
        REFSCHED_PROBE(
            probe_,
            onDramCommand({now,
                           isWriteQueue ? validate::DramOp::Write
                                        : validate::DramOp::Read,
                           ch, r.coord.rank, r.coord.bank,
                           r.coord.row, 0}));
        if (isWriteQueue) {
            b.write(now, t);
            ++c.stats.writes;
            c.stats.energyReadWritePj += params_.energy.writePj;
        } else {
            const Tick dataAt = b.read(now, t);
            ++c.stats.reads;
            c.stats.energyReadWritePj += params_.energy.readPj;
            completeRead(c, r, dataAt);
        }
        c.nextCasAt = now + t.tBURST;
        c.lastCasRank = r.coord.rank;
        c.lastCasWasWrite = isWriteQueue;
        c.busyTicks += t.tBURST;
        // A served CAS always targets the open row: retire its hit.
        noteQueuedRequest(c, bankIdx, r.coord.row, !isWriteQueue, -1);
        accrueOccupancy(c, now);
        q.erase(slot);
        REFSCHED_PROBE(
            probe_,
            onMcQueue({now, ch, false, !isWriteQueue,
                       static_cast<int>(c.readQ.size()),
                       static_cast<int>(c.writeQ.size()),
                       c.blockedReadsNow}));
        notifyRetry();
        return true;
    };

    auto issueAct = [&](std::uint32_t slot) {
        Request &r = q.request(slot);
        auto &rank = c.ranks[static_cast<std::size_t>(r.coord.rank)];
        REFSCHED_PROBE(
            probe_,
            onDramCommand({now, validate::DramOp::Act, ch,
                           r.coord.rank, r.coord.bank, r.coord.row,
                           0}));
        mcActivate(c, bankIndex(r.coord.rank, r.coord.bank),
                   r.coord.row, t);
        rank.noteActivate(now, t);
        c.stats.energyActivatePj += params_.energy.actPrePj;
        r.neededAct = true;
        return true;
    };

    auto issuePre = [&](int rankIdx, int bankInRank) {
        const int bankIdx = bankIndex(rankIdx, bankInRank);
        REFSCHED_PROBE(
            probe_,
            onDramCommand({now, validate::DramOp::Pre, ch, rankIdx,
                           bankInRank,
                           static_cast<std::uint64_t>(
                               bankState(bankIdx).openRow),
                           0}));
        mcPrecharge(c, bankIdx, t);
        return true;
    };

    auto busReadyFor = [&](int rank) {
        Tick busReady = c.nextCasAt;
        if (c.lastCasRank >= 0 && c.lastCasRank != rank)
            busReady += t.tRTRS;
        if (c.lastCasRank >= 0 && c.lastCasWasWrite != isWriteQueue)
            busReady += t.tBusTurn;
        return busReady;
    };

    // FR-FCFS starvation cap (reads only): once the oldest read has
    // waited past the threshold, its next command issues ahead of
    // any younger row hit -- including a precharge of a row younger
    // requests still want, which the open-row pass 3 below would
    // veto forever under a sustained hit streak.  When the front
    // request cannot issue anything this tick, younger requests
    // proceed as usual (the cap is a priority, not a barrier).
    if (!isWriteQueue && params_.readStarvationThreshold > 0) {
        const std::uint32_t fs = q.front();
        const Request &fr = q.request(fs);
        if (now - fr.enqueuedAt < params_.readStarvationThreshold) {
            // Not starved yet: wake at the promotion tick so the
            // threshold crossing is never slept through (an early
            // wake that changes nothing simply re-sleeps).
            cand(fr.enqueuedAt + params_.readStarvationThreshold);
        } else {
            const int fIdx = bankIndex(fr.coord.rank, fr.coord.bank);
            if (!bankBlocked(fIdx)) {
                Bank &fb = bankState(fIdx);
                auto &frank =
                    c.ranks[static_cast<std::size_t>(fr.coord.rank)];
                if (fb.isOpen()
                    && fb.openRow
                        == static_cast<std::int64_t>(fr.coord.row)) {
                    const Tick casAllowed =
                        isWriteQueue ? fb.wrAllowedAt : fb.rdAllowedAt;
                    const Tick busReady = busReadyFor(fr.coord.rank);
                    if (now >= casAllowed && now >= busReady) {
                        ++c.stats.promotedReads;
                        return issueCas(fs);
                    }
                    cand(std::max(casAllowed, busReady));
                } else if (!fb.isOpen()) {
                    if (frank.underRefresh(now)) {
                        cand(frank.refreshingUntil);
                    } else if (now >= fb.actAllowedAt
                               && now >= frank.actAllowedAt
                               && !frank.fawBlocked(now, t)) {
                        ++c.stats.promotedReads;
                        return issueAct(fs);
                    } else {
                        cand(std::max({fb.actAllowedAt,
                                       frank.actAllowedAt,
                                       frank.fawClearAt(t)}));
                    }
                } else {
                    if (now >= fb.preAllowedAt) {
                        ++c.stats.promotedReads;
                        return issuePre(fr.coord.rank, fr.coord.bank);
                    }
                    cand(fb.preAllowedAt);
                }
            }
        }
    }

    // Each pass is a single-word scan: the occupied-bank mask is
    // intersected with the open-bank mask and the incrementally
    // maintained row-hit mask, so only banks that can possibly yield
    // the pass's command are visited at all.  FR-FCFS age order is
    // preserved by taking the minimum request sequence number over
    // per-bank candidates.
    const std::uint64_t occupied = q.occupiedWord();
    const std::uint64_t hitMask =
        isWriteQueue ? c.writeHitMask : c.readHitMask;
    std::uint32_t best = kNone;
    std::uint64_t bestSeq = ~std::uint64_t{0};

    // Pass 1 (FR): oldest ready row hit, over banks with a queued
    // open-row hit.  Banks without a hit candidate contribute
    // neither an issue nor a wake: the hit set only changes through
    // enqueues and activates, which wake the channel themselves.
    std::uint64_t word = occupied & c.openMask & hitMask;
    while (word != 0) {
        const int bankIdx = std::countr_zero(word);
        word &= word - 1;
        Bank &b = bankState(bankIdx);
        if (bankBlocked(bankIdx))
            continue;
        const Tick casAllowed =
            isWriteQueue ? b.wrAllowedAt : b.rdAllowedAt;
        // Bus constraints: burst spacing plus rank-to-rank switch
        // and read<->write turnaround penalties.
        const Tick busReady = busReadyFor(bankIdx / banksPerRank);
        if (now < casAllowed || now < busReady) {
            cand(std::max(casAllowed, busReady));
            continue;
        }
        for (auto s = q.bankFront(bankIdx); s != kNone;
             s = q.nextInBank(s)) {
            const Request &r = q.request(s);
            if (b.openRow == static_cast<std::int64_t>(r.coord.row)) {
                if (r.seq < bestSeq) {
                    bestSeq = r.seq;
                    best = s;
                }
                break;
            }
        }
    }
    if (best != kNone)
        return issueCas(best);

    // Pass 2 (FCFS): oldest request needing an ACT on a closed bank.
    // The gating conditions are request-independent, so the per-bank
    // candidate is the bank's oldest request.
    best = kNone;
    bestSeq = ~std::uint64_t{0};
    word = occupied & ~c.openMask;
    while (word != 0) {
        const int bankIdx = std::countr_zero(word);
        word &= word - 1;
        Bank &b = bankState(bankIdx);
        if (bankBlocked(bankIdx))
            continue;
        auto &rank =
            c.ranks[static_cast<std::size_t>(bankIdx / banksPerRank)];
        if (rank.underRefresh(now)) {
            cand(rank.refreshingUntil);
            continue;
        }
        if (now < b.actAllowedAt || now < rank.actAllowedAt
            || rank.fawBlocked(now, t)) {
            cand(std::max({b.actAllowedAt, rank.actAllowedAt,
                           rank.fawClearAt(t)}));
            continue;
        }
        const Request &r = q.request(q.bankFront(bankIdx));
        if (r.seq < bestSeq) {
            bestSeq = r.seq;
            best = q.bankFront(bankIdx);
        }
    }
    if (best != kNone)
        return issueAct(best);

    // Pass 3: precharge a conflicting row for the oldest conflicting
    // request, but only when no queued request still wants that row
    // (open-row policy).  "Still wanted" is exactly the hit mask, so
    // eligible banks are (occupied & open & ~hit) -- and on such a
    // bank every queued request conflicts, making the bank's oldest
    // request the candidate with no list walk.
    best = kNone;
    bestSeq = ~std::uint64_t{0};
    word = occupied & c.openMask & ~hitMask;
    while (word != 0) {
        const int bankIdx = std::countr_zero(word);
        word &= word - 1;
        Bank &b = bankState(bankIdx);
        if (bankBlocked(bankIdx))
            continue;
        if (now < b.preAllowedAt) {
            cand(b.preAllowedAt);
            continue;
        }
        const std::uint32_t oldest = q.bankFront(bankIdx);
        if (q.request(oldest).seq < bestSeq) {
            bestSeq = q.request(oldest).seq;
            best = oldest;
        }
    }
    if (best != kNone) {
        const Request &r = q.request(best);
        return issuePre(r.coord.rank, r.coord.bank);
    }

    return false;
}

bool
MemoryController::closedPagePrecharge(Channel &c,
                                      [[maybe_unused]] int ch,
                                      Tick &wake)
{
    const Tick now = c.eq->now();
    const auto &t = cfg_.timings;

    auto cand = [&](Tick when) {
        if (when > now)
            wake = std::min(wake, when);
    };

    // Only open, unfrozen banks whose row no queued request still
    // wants are precharge candidates -- exactly
    // open & ~frozen & ~(readHit | writeHit), a single word op.
    // Hit banks lose their conservative preAllowedAt wake fold, but
    // no precharge can issue there until the hit is served, and
    // serving happens inside a tick that re-arms the wake itself.
    std::uint64_t word = c.openMask & ~c.frozenMask
        & ~(c.readHitMask | c.writeHitMask);
    while (word != 0) {
        const int bankIdx = std::countr_zero(word);
        word &= word - 1;
        dram::Bank &b = *c.bank[static_cast<std::size_t>(bankIdx)];
        if (b.underRefresh(now)) {
            cand(b.refreshingUntil);
            continue;
        }
        if (now < b.preAllowedAt) {
            cand(b.preAllowedAt);
            continue;
        }
        const int rank = bankIdx / cfg_.org.banksPerRank;
        const int bank = bankIdx % cfg_.org.banksPerRank;
        REFSCHED_PROBE(
            probe_,
            onDramCommand({now, validate::DramOp::Pre, ch, rank, bank,
                           static_cast<std::uint64_t>(b.openRow), 0}));
        mcPrecharge(c, bankIdx, t);
        return true;
    }
    return false;
}

bool
MemoryController::idleRowPrecharge(Channel &c,
                                   [[maybe_unused]] int ch,
                                   Tick &wake)
{
    const Tick now = c.eq->now();
    const auto &t = cfg_.timings;

    auto cand = [&](Tick when) {
        if (when > now)
            wake = std::min(wake, when);
    };

    // Banks with a queued hit are pass 1's business (serving resets
    // the idle clock), frozen banks contribute neither an issue nor
    // a fold -- both drop out of the scan word up front.
    std::uint64_t word = c.openMask & ~c.frozenMask
        & ~(c.readHitMask | c.writeHitMask);
    while (word != 0) {
        const int bankIdx = std::countr_zero(word);
        word &= word - 1;
        dram::Bank &b = *c.bank[static_cast<std::size_t>(bankIdx)];
        if (b.underRefresh(now)) {
            cand(b.refreshingUntil);
            continue;
        }
        const Tick expiry =
            b.lastAccessAt + params_.openRowIdleTimeout;
        if (now < expiry) {
            cand(expiry);
            continue;
        }
        if (now < b.preAllowedAt) {
            cand(b.preAllowedAt);
            continue;
        }
        REFSCHED_PROBE(
            probe_,
            onDramCommand({now, validate::DramOp::Pre, ch,
                           bankIdx / cfg_.org.banksPerRank,
                           bankIdx % cfg_.org.banksPerRank,
                           static_cast<std::uint64_t>(b.openRow), 0}));
        mcPrecharge(c, bankIdx, t);
        ++c.stats.idleRowCloses;
        return true;
    }
    return false;
}

void
MemoryController::tick(int ch)
{
    auto &c = channels_[static_cast<std::size_t>(ch)];
    c.tickScheduledAt = kMaxTick;
    const Tick now = c.eq->now();

    // Close the open refresh-blocked interval.  Between the tick
    // that opened it and this one, no command issued and no engine
    // state changed, so the front request was blocked for the whole
    // stretch -- exactly the per-edge sum the polling controller
    // accumulated tCK at a time.
    if (c.blockedMarkValid) {
        c.stats.refreshBlockedTicks +=
            static_cast<double>(now - c.blockedMark);
        c.blockedMarkValid = false;
    }

    rollUtilizationEpoch(c);
    harvestDueRefreshes(c, ch);

    // Write-drain hysteresis (Table 1: watermarks 32/54).  Writes
    // are only drained in batches: trickling single writes between
    // read bursts would precharge open rows and wreck read locality,
    // so an opportunistic drain (read queue idle) also requires a
    // worthwhile batch above the low watermark.
    const bool opportunistic = c.readQ.empty()
        && c.writeQ.size() >= params_.writeLowWatermark + 4;
    if (!c.draining
        && (c.writeQ.size() >= params_.writeHighWatermark
            || opportunistic)) {
        c.draining = true;
        ++c.stats.writeDrainBatches;
    } else if (c.draining
               && c.writeQ.size() <= params_.writeLowWatermark) {
        c.draining = false;
    }

    // Wake-precise issue attempt: the passes below fold every time
    // gate they bounce off into `wake`, so when nothing issues we
    // know the exact earliest tick the outcome can differ.
    Tick wake = kMaxTick;
    bool issued = refreshEngineStep(c, ch, wake);

    if (!issued) {
        if (c.draining)
            issued = serveQueue(c, ch, c.writeQ, true, wake);
        else
            issued = serveQueue(c, ch, c.readQ, false, wake);
    }
    if (!issued && params_.pagePolicy == PagePolicy::Closed)
        issued = closedPagePrecharge(c, ch, wake);
    if (!issued && params_.pagePolicy == PagePolicy::Open
        && params_.openRowIdleTimeout > 0)
        issued = idleRowPrecharge(c, ch, wake);

    // Re-arm.  A command issue changes gate state, so the very next
    // edge may issue again; a no-op tick sleeps to the earliest gate
    // crossing (all gate inputs are constant between controller
    // ticks, so nothing can become issuable before it).  Work that
    // waits on externally driven state -- a below-watermark write
    // backlog, a postponed refresh behind queued demand -- needs no
    // candidate: the enqueue or serve that changes it wakes the
    // channel itself.
    if (issued)
        wake = now + cfg_.timings.tCK;
    wake = std::min(wake, refresh_->nextDue(ch));
    REFSCHED_ASSERT(
        wake != kMaxTick || c.readQ.empty(),
        "controller would sleep forever with reads queued");
    if (wake != kMaxTick)
        scheduleTick(ch, wake);
}

void
MemoryController::registerStats(StatRegistry &reg,
                                const std::string &prefix)
{
    for (std::size_t ch = 0; ch < channels_.size(); ++ch) {
        auto &s = channels_[ch].stats;
        const std::string p = prefix + ".ch" + std::to_string(ch) + ".";
        reg.add(p + "reads", &s.reads);
        reg.add(p + "writes", &s.writes);
        reg.add(p + "rowHits", &s.rowHits);
        reg.add(p + "rowMisses", &s.rowMisses);
        reg.add(p + "refreshCommands", &s.refreshCommands);
        reg.add(p + "refreshNoops", &s.refreshNoops);
        reg.add(p + "refreshPauses", &s.refreshPauses);
        reg.add(p + "rowsRefreshed", &s.rowsRefreshed);
        reg.add(p + "readsBlockedByRefresh", &s.readsBlockedByRefresh);
        reg.add(p + "refreshBlockedTicks", &s.refreshBlockedTicks);
        reg.add(p + "promotedReads", &s.promotedReads);
        reg.add(p + "idleRowCloses", &s.idleRowCloses);
        reg.add(p + "writeDrainBatches", &s.writeDrainBatches);
        reg.add(p + "forwardedReads", &s.forwardedReads);
        reg.add(p + "readLatency", &s.readLatency);
        reg.add(p + "readQueueWait", &s.readQueueWait);
        reg.add(p + "readLatencyDist", &s.readLatencyDist);
        reg.add(p + "readLatencyClean", &s.readLatencyClean);
        reg.add(p + "readLatencyBlocked", &s.readLatencyBlocked);
        reg.add(p + "readQueueWaitHist", &s.readQueueWaitHist);
        reg.add(p + "energyActivatePj", &s.energyActivatePj);
        reg.add(p + "energyReadWritePj", &s.energyReadWritePj);
        reg.add(p + "energyRefreshPj", &s.energyRefreshPj);
        reg.add(p + "readQOccIntegral", &s.readQOccIntegral);
        reg.add(p + "writeQOccIntegral", &s.writeQOccIntegral);
        reg.add(p + "readQPeakDepth", &s.readQPeakDepth);
        reg.add(p + "writeQPeakDepth", &s.writeQPeakDepth);
    }
}

dram::EnergyBreakdown
MemoryController::energyBreakdown(int channel, Tick elapsed) const
{
    const auto &s = channelStats(channel);
    dram::EnergyModel model(params_.energy, cfg_.org.ranksPerChannel);
    dram::EnergyBreakdown out;
    out.activatePj = s.energyActivatePj.value();
    out.readWritePj = s.energyReadWritePj.value();
    out.refreshPj = s.energyRefreshPj.value();
    out.backgroundPj = model.backgroundPj(elapsed);
    return out;
}

} // namespace refsched::memctrl
