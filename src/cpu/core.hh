/**
 * @file
 * Trace-driven out-of-order core model (Table 1: 3.2 GHz, 8-wide
 * issue, 128-entry ROB).
 *
 * The model captures the two effects the paper's evaluation depends
 * on: (1) memory-level parallelism bounded by ROB capacity -- the
 * core keeps issuing past outstanding DRAM misses until the ROB
 * fills, then stalls until the OLDEST miss returns (in-order
 * retirement); and (2) sensitivity to DRAM latency, since every
 * cycle a refresh adds to a blocking miss lengthens the stall.
 *
 * Cache-resident work is executed in batches inside one event
 * (nothing observable happens between hits); every DRAM-touching
 * operation is replayed at its exact issue tick so the memory
 * controller sees a faithful arrival process.  The OS scheduler
 * drives context switches via setTask().
 */

#ifndef REFSCHED_CPU_CORE_HH
#define REFSCHED_CPU_CORE_HH

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "cache/cache_hierarchy.hh"
#include "cpu/instruction_source.hh"
#include "memctrl/memory_port.hh"
#include "os/scheduler.hh"
#include "os/task.hh"
#include "os/virtual_memory.hh"
#include "simcore/event_queue.hh"
#include "simcore/stats.hh"
#include "simcore/types.hh"

namespace refsched::cpu
{

struct CoreParams
{
    /** CPU clock period in ticks (312 ps ~= 3.2 GHz). */
    Tick cpuPeriod = 312;
    int issueWidth = 8;
    int robSize = 128;

    /** Outstanding DRAM reads per core (MSHR / prefetch depth). */
    int mshrCount = 16;

    /**
     * Treat sequential-stream misses as prefetch-covered (they use
     * bandwidth and MSHRs but never block retirement).  The paper's
     * gem5 O3 substrate has no prefetcher, so the default is off;
     * bench/abl_partitioning flips it to study the bandwidth-bound
     * regime.
     */
    bool prefetchSequential = false;

    /** Extra cycles a minor page fault costs the core. */
    Cycles pageFaultPenalty = 3000;

    /**
     * Fraction of L2-hit latency the out-of-order window fails to
     * hide (0 = fully hidden, 1 = fully exposed).
     */
    double hitLatencyVisibility = 0.3;
};

class Core : public os::CpuContext, public Callee
{
  public:
    Core(EventQueue &eq, int id, const CoreParams &params,
         cache::CacheHierarchy &caches, memctrl::MemoryPort &mc,
         os::VirtualMemory &vm);

    Core(const Core &) = delete;
    Core &operator=(const Core &) = delete;

    // --- os::CpuContext ---
    void setTask(os::Task *task, Tick runUntil) override;

    int id() const { return id_; }
    os::Task *currentTask() const { return task_; }
    const CoreParams &params() const { return params_; }

    // --- Core-lane coordination (core/system, ClusterFabric) ---
    //
    // Under core-cluster lanes the core's events (resumes, DRAM
    // fills) live on its cluster lane while the scheduler still
    // drives setTask from the main lane in phase A.  An L1 miss (or
    // an unmapped page) cannot touch the shared L2 / buddy allocator
    // from a lane, so the core PARKS: it records the pending lookup
    // and returns; the ClusterFabric drains all parked cores at the
    // single-threaded window boundary in (parkTick, coreId) order
    // and hands each its result, scheduling an epoch-guarded resume
    // on the cluster lane at the boundary tick.

    /** What the core is parked on, if anything. */
    enum class LaneWait
    {
        None,
        Fault,  ///< page not mapped; boundary runs translate()
        L2,     ///< L1 miss; boundary runs CacheHierarchy::applyL2
    };

    /** Switch this core to lane mode, eventing on @p lane. */
    void attachCoreLane(EventQueue &lane);

    LaneWait laneWait() const { return laneWait_; }
    /** Core-local tick at which the parked access issued. */
    Tick laneWaitTick() const { return laneWaitTick_; }
    const cache::L2Lookup &parkedL2() const { return parkedL2_; }
    Addr parkedFaultVaddr() const { return parkedFaultVaddr_; }

    /** Boundary drain: deliver the shared-L2 half of a parked miss
     *  and schedule the resume at @p boundary on the cluster lane. */
    void completeL2(const cache::HierarchyResult &res, Tick boundary);

    /** Boundary drain: the parked fault has been serviced (the
     *  fabric ran the allocating translate); resume at @p boundary. */
    void completeFault(Tick boundary);

    void registerStats(StatRegistry &reg, const std::string &prefix);

    // --- Statistics ---
    Scalar instrsIssued;
    Scalar dramReads;
    Scalar dramWrites;
    Scalar robStallTicks;
    Scalar mshrStallTicks;
    Scalar mcBackpressureEvents;
    Scalar contextSwitches;
    Scalar droppedWritebacks;

  private:
    struct OutstandingMiss
    {
        std::uint64_t instrIdx;
    };

    /** Run the issue loop until a sync point.  @p now is the firing
     *  tick of the invoking event (== the owning queue's now()). */
    void advance(Tick now);

    /** Charge @p n instructions of non-memory work. */
    void chargeInstructions(std::uint64_t n);

    /** Charge @p cycles of pure latency (no instructions). */
    void chargeCycles(double cycles);

    /** ROB cannot accept instructions past the oldest miss. */
    bool robFull() const;

    /** DRAM read response for (epoch, instrIdx). */
    void onFill(std::uint64_t epoch, std::uint64_t instrIdx,
                Tick fillTick);

    /** Callee: read-completion events carry (epoch, instrIdx) as the
     *  two cookies; the controller schedules us directly, with no
     *  per-request closure. */
    void
    fire(Tick now, std::uint64_t epoch,
         std::uint64_t instrIdx) override
    {
        onFill(epoch, instrIdx, now);
    }

    /** Issue queued write-backs to the MC; false on backpressure. */
    bool flushWritebacks();

    /** Schedule advance() to resume at @p when. */
    void scheduleResume(Tick when);

    /** Intrusive resume event: fires advance() if the scheduling
     *  epoch is still current.  A separate Callee from the Core
     *  itself, whose fire() is the read-completion path. */
    class ResumeCallee : public Callee
    {
      public:
        void fire(Tick now, std::uint64_t epoch,
                  std::uint64_t arg1) override;
        Core *core = nullptr;
    };

    EventQueue &eq_;
    /** Queue the core's own events live on: eq_ normally, the
     *  cluster lane in core-lane mode. */
    EventQueue *schedQ_;
    int id_;
    CoreParams params_;
    cache::CacheHierarchy &caches_;
    memctrl::MemoryPort &mc_;
    os::VirtualMemory &vm_;

    // --- Core-lane mode state ---
    bool laneMode_ = false;
    LaneWait laneWait_ = LaneWait::None;
    Tick laneWaitTick_ = 0;
    cache::L2Lookup parkedL2_;
    Addr parkedFaultVaddr_ = 0;
    cache::HierarchyResult l2Result_;
    bool l2ResultReady_ = false;
    bool faultResolved_ = false;

    os::Task *task_ = nullptr;
    Tick runUntil_ = 0;
    std::uint64_t epoch_ = 0;

    /** Core-local issue clock; may run ahead of eq_.now() while
     *  processing cache-resident work. */
    Tick localTick_ = 0;

    std::uint64_t instrIdx_ = 0;
    std::deque<OutstandingMiss> outstanding_;

    /**
     * O(1) fill lookup, replacing a linear scan of outstanding_ per
     * DRAM completion.  Every live miss index lies in [front, front
     * + robSize]: the stage-E gate admits the memory instruction at
     * distance <= robSize - 1 and charging it adds one, and stage B
     * pushes the staged miss without a further ROB check.  That is
     * robSize + 1 distinct values, so idx % (robSize + 1) is
     * collision-free among live entries: slot idx mod (robSize + 1)
     * holds (owner instrIdx, filled flag).  A fill marks its slot
     * only when the owner matches -- prefetch-covered misses were
     * never pushed, and their index can trail the ROB window
     * arbitrarily, so an unconditional mark could corrupt an
     * innocent resident entry.
     */
    std::vector<std::uint64_t> fillSlotIdx_;
    std::vector<std::uint8_t> fillSlotFilled_;
    std::optional<TraceEntry> pendingEntry_;
    std::uint64_t pendingGap_ = 0;
    std::optional<Addr> pendingMiss_;
    std::uint64_t pendingMissIdx_ = 0;
    bool pendingMissSequential_ = false;
    bool pendingMissDependent_ = false;
    std::deque<Addr> pendingWritebacks_;

    /** DRAM reads in flight from this core (bounded by mshrCount);
     *  persists across context switches (it is core hardware). */
    int inFlightReads_ = 0;

    bool stalledOnRob_ = false;
    bool stalledOnMshr_ = false;
    bool stalledOnDependency_ = false;
    bool waitingRetry_ = false;
    Tick stallStart_ = 0;
    EventHandle resumeEvent_;
    ResumeCallee resumeCallee_;

    double cpiTicks_ = 0.0;  ///< ticks per non-memory instruction

    /** chargeTable_[n] = llround(n * cpiTicks_) for n in [0,
     *  robSize]; chargeInstructions' n is ROB-bounded, so the hot
     *  path replaces an llround per call with a table load.  Rebuilt
     *  only when cpiTicks_ changes (context switch to a different
     *  CPI), yielding identical tick charges. */
    std::vector<Tick> chargeTable_;
    double chargeTableCpi_ = -1.0;
};

} // namespace refsched::cpu

#endif // REFSCHED_CPU_CORE_HH
