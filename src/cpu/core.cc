#include "cpu/core.hh"

#include <algorithm>
#include <cmath>

#include "simcore/logging.hh"

namespace refsched::cpu
{

Core::Core(EventQueue &eq, int id, const CoreParams &params,
           cache::CacheHierarchy &caches,
           memctrl::MemoryPort &mc, os::VirtualMemory &vm)
    : eq_(eq), schedQ_(&eq), id_(id), params_(params),
      caches_(caches), mc_(mc), vm_(vm)
{
    if (params_.issueWidth < 1 || params_.robSize < 1)
        fatal("core needs positive issue width and ROB size");
    if (params_.cpuPeriod == 0)
        fatal("cpu period must be non-zero");
    resumeCallee_.core = this;
    fillSlotIdx_.assign(static_cast<std::size_t>(params_.robSize) + 1,
                        0);
    fillSlotFilled_.assign(
        static_cast<std::size_t>(params_.robSize) + 1, 0);
}

void
Core::attachCoreLane(EventQueue &lane)
{
    laneMode_ = true;
    schedQ_ = &lane;
}

void
Core::completeL2(const cache::HierarchyResult &res, Tick boundary)
{
    REFSCHED_ASSERT(laneWait_ == LaneWait::L2, "no parked L2 lookup");
    laneWait_ = LaneWait::None;
    l2Result_ = res;
    l2ResultReady_ = true;
    scheduleResume(boundary);
}

void
Core::completeFault(Tick boundary)
{
    REFSCHED_ASSERT(laneWait_ == LaneWait::Fault, "no parked fault");
    laneWait_ = LaneWait::None;
    faultResolved_ = true;
    scheduleResume(boundary);
}

void
Core::ResumeCallee::fire(Tick now, std::uint64_t epoch, std::uint64_t)
{
    if (epoch == core->epoch_)
        core->advance(now);
}

void
Core::setTask(os::Task *task, Tick runUntil)
{
    if (task == task_) {
        // Same task continues into the next quantum: keep the ROB,
        // trace position and any in-flight misses alive.
        runUntil_ = runUntil;
        if (task_ && !stalledOnRob_ && !waitingRetry_)
            advance(eq_.now());
        return;
    }

    ++epoch_;
    ++contextSwitches;
    if (stalledOnRob_) {
        robStallTicks += static_cast<double>(eq_.now() - stallStart_);
        stalledOnRob_ = false;
    }
    if (stalledOnMshr_) {
        mshrStallTicks += static_cast<double>(eq_.now() - stallStart_);
        stalledOnMshr_ = false;
    }
    if (stalledOnDependency_) {
        robStallTicks += static_cast<double>(eq_.now() - stallStart_);
        stalledOnDependency_ = false;
    }
    waitingRetry_ = false;
    droppedWritebacks += static_cast<double>(pendingWritebacks_.size());
    pendingWritebacks_.clear();
    outstanding_.clear();
    pendingEntry_.reset();
    pendingGap_ = 0;
    pendingMiss_.reset();
    // Any boundary-delivered L2/fault result of the outgoing task
    // dies with it (the epoch bump already kills its resume event).
    l2ResultReady_ = false;
    faultResolved_ = false;
    resumeEvent_.cancel();

    task_ = task;
    runUntil_ = runUntil;
    if (task_) {
        REFSCHED_ASSERT(task_->source != nullptr,
                        "task without instruction source: pid ",
                        task_->pid());
        cpiTicks_ = std::max(task_->source->baseCpi(),
                             1.0 / params_.issueWidth)
            * static_cast<double>(params_.cpuPeriod);
        if (cpiTicks_ != chargeTableCpi_) {
            chargeTableCpi_ = cpiTicks_;
            chargeTable_.resize(
                static_cast<std::size_t>(params_.robSize) + 1);
            for (std::size_t n = 0; n < chargeTable_.size(); ++n) {
                chargeTable_[n] = static_cast<Tick>(std::llround(
                    static_cast<double>(n) * cpiTicks_));
            }
        }
        localTick_ = eq_.now();
        instrIdx_ = 0;
        advance(eq_.now());
    }
}

bool
Core::robFull() const
{
    if (outstanding_.empty())
        return false;
    return instrIdx_ - outstanding_.front().instrIdx
        >= static_cast<std::uint64_t>(params_.robSize);
}

void
Core::chargeInstructions(std::uint64_t n)
{
    if (n == 0)
        return;
    localTick_ += n < chargeTable_.size()
        ? chargeTable_[n]
        : static_cast<Tick>(
              std::llround(static_cast<double>(n) * cpiTicks_));
    instrIdx_ += n;
    task_->instrsRetired += n;
    instrsIssued += static_cast<double>(n);
}

void
Core::chargeCycles(double cycles)
{
    localTick_ += static_cast<Tick>(std::llround(
        cycles * static_cast<double>(params_.cpuPeriod)));
}

void
Core::scheduleResume(Tick when)
{
    resumeEvent_.cancel();
    resumeEvent_ = schedQ_->schedule(when, resumeCallee_, epoch_, 0);
}

bool
Core::flushWritebacks()
{
    while (!pendingWritebacks_.empty()) {
        memctrl::Request w;
        w.paddr = pendingWritebacks_.front();
        w.type = memctrl::Request::Type::Write;
        w.coreId = id_;
        w.pid = task_ ? task_->pid() : -1;
        w.issueTick = localTick_;
        if (!mc_.enqueue(std::move(w)))
            return false;
        pendingWritebacks_.pop_front();
        ++dramWrites;
    }
    return true;
}

void
Core::onFill(std::uint64_t epoch, std::uint64_t instrIdx, Tick fillTick)
{
    // The MSHR frees regardless of which task issued the read.
    --inFlightReads_;

    if (epoch != epoch_) {
        // Response for a context-switched-out task; it may still
        // unblock an MSHR stall of the current task.
        if (stalledOnMshr_ && inFlightReads_ < params_.mshrCount) {
            stalledOnMshr_ = false;
            mshrStallTicks +=
                static_cast<double>(fillTick - stallStart_);
            localTick_ = std::max(localTick_, fillTick);
            advance(fillTick);
        }
        return;
    }

    // O(1) slot lookup replacing the per-fill linear scan: live
    // entries own slot idx % (robSize + 1) exclusively (see
    // fillSlotIdx_), so an owner match is exactly "the miss is still
    // outstanding".
    const std::uint64_t slots = fillSlotIdx_.size();
    if (fillSlotIdx_[static_cast<std::size_t>(instrIdx % slots)]
        == instrIdx) {
        fillSlotFilled_[static_cast<std::size_t>(instrIdx % slots)] =
            1;
    }
    while (!outstanding_.empty()
           && fillSlotFilled_[static_cast<std::size_t>(
                  outstanding_.front().instrIdx % slots)]) {
        outstanding_.pop_front();
    }

    if (stalledOnRob_ && !robFull()) {
        stalledOnRob_ = false;
        robStallTicks += static_cast<double>(fillTick - stallStart_);
        localTick_ = std::max(localTick_, fillTick);
        advance(fillTick);
    } else if (stalledOnDependency_ && outstanding_.empty()) {
        stalledOnDependency_ = false;
        robStallTicks += static_cast<double>(fillTick - stallStart_);
        localTick_ = std::max(localTick_, fillTick);
        advance(fillTick);
    } else if (stalledOnMshr_ && inFlightReads_ < params_.mshrCount) {
        stalledOnMshr_ = false;
        mshrStallTicks += static_cast<double>(fillTick - stallStart_);
        localTick_ = std::max(localTick_, fillTick);
        advance(fillTick);
    }
}

void
Core::advance(Tick now)
{
    if (!task_ || stalledOnRob_ || stalledOnMshr_
        || stalledOnDependency_ || waitingRetry_) {
        return;
    }
    if (laneMode_) {
        // Parked for the boundary drain: only the fabric's resume
        // may continue this core (setTask of the same task could
        // otherwise re-enter mid-park).
        if (laneWait_ != LaneWait::None)
            return;
    } else if (localTick_ < now) {
        // Legacy: the local clock never trails the event clock.  In
        // lane mode the core may legitimately run BEHIND wall clock
        // after a boundary-resumed park (catch-up semantics); the
        // clamp would inflate every parked access by up to a window.
        localTick_ = now;
    }

    auto setRetry = [this] {
        waitingRetry_ = true;
        ++mcBackpressureEvents;
        mc_.requestRetryNotification([this, e = epoch_] {
            if (e == epoch_) {
                waitingRetry_ = false;
                advance(eq_.now());
            }
        });
    };

    // Returns true when execution must pause to let wall-clock catch
    // up with the core-local clock before touching shared state.
    auto needSync = [&]() -> bool {
        if (localTick_ > now) {
            scheduleResume(localTick_);
            return true;
        }
        return false;
    };

    while (true) {
        if (localTick_ >= runUntil_)
            return;  // quantum exhausted; scheduler takes over

        // --- Stage A: drain pending write-backs to the MC ---
        if (!pendingWritebacks_.empty()) {
            if (needSync())
                return;
            if (!flushWritebacks()) {
                setRetry();
                return;
            }
            continue;
        }

        // --- Stage B: issue a pending DRAM read miss ---
        if (pendingMiss_) {
            // A pointer-chase load cannot even compute its address
            // until the chain's previous miss returns.
            if (pendingMissDependent_ && !outstanding_.empty()) {
                if (needSync())
                    return;
                stalledOnDependency_ = true;
                stallStart_ = now;
                return;  // resumed by onFill
            }
            if (inFlightReads_ >= params_.mshrCount) {
                if (needSync())
                    return;
                stalledOnMshr_ = true;
                stallStart_ = now;
                return;  // resumed by onFill
            }
            if (needSync())
                return;
            memctrl::Request r;
            r.paddr = *pendingMiss_;
            r.type = memctrl::Request::Type::Read;
            r.coreId = id_;
            r.pid = task_->pid();
            r.issueTick = localTick_;
            r.completion = this;
            r.cookie0 = epoch_;
            r.cookie1 = pendingMissIdx_;
            if (!mc_.enqueue(std::move(r))) {
                setRetry();
                return;
            }
            ++inFlightReads_;
            // Prefetch-covered sequential misses consume bandwidth
            // and an MSHR but do not block retirement.
            if (!(pendingMissSequential_
                  && params_.prefetchSequential)) {
                const std::size_t s = static_cast<std::size_t>(
                    pendingMissIdx_ % fillSlotIdx_.size());
                fillSlotIdx_[s] = pendingMissIdx_;
                fillSlotFilled_[s] = 0;
                outstanding_.push_back(
                    OutstandingMiss{pendingMissIdx_});
            }
            pendingMiss_.reset();
            ++dramReads;
            ++task_->dramReads;
            continue;
        }

        // --- Stage C: fetch the next trace entry ---
        if (!pendingEntry_) {
            pendingEntry_ = task_->source->next();
            pendingGap_ = pendingEntry_->gap;
        }

        // --- Stage D: issue the gap instructions, ROB-limited ---
        while (pendingGap_ > 0) {
            if (robFull()) {
                if (needSync())
                    return;
                stalledOnRob_ = true;
                stallStart_ = now;
                return;  // resumed by onFill
            }
            std::uint64_t space =
                static_cast<std::uint64_t>(params_.robSize);
            if (!outstanding_.empty()) {
                space = static_cast<std::uint64_t>(params_.robSize)
                    - (instrIdx_ - outstanding_.front().instrIdx);
            }
            const std::uint64_t take = std::min(pendingGap_, space);
            chargeInstructions(take);
            pendingGap_ -= take;
        }

        // --- Stage E: the memory operation (one instruction) ---

        // Lane mode, continuation of a parked L1 miss: the boundary
        // drain delivered the shared-L2 result; replay the legacy
        // post-access arithmetic.  Placed before the robFull gate
        // because the parked op cleared it when it issued (and
        // outstanding_ can only have shrunk since).
        if (laneMode_ && l2ResultReady_) {
            l2ResultReady_ = false;
            const auto res = l2Result_;
            const Addr paddr = parkedL2_.paddr;
            chargeInstructions(1);
            ++task_->memOps;

            if (!res.dramMiss && res.latency > 0) {
                chargeCycles(static_cast<double>(res.latency)
                             * params_.hitLatencyVisibility);
            }

            const Addr lineMask = ~(
                static_cast<Addr>(caches_.l2().params().lineBytes)
                - 1);
            for (int i = 0; i < res.writebackCount; ++i)
                pendingWritebacks_.push_back(res.writebacks[i]
                                             & lineMask);

            if (res.dramMiss) {
                pendingMiss_ = paddr & lineMask;
                pendingMissIdx_ = instrIdx_;
                pendingMissSequential_ = pendingEntry_->sequential;
                pendingMissDependent_ = pendingEntry_->dependent;
            }

            pendingEntry_.reset();
            continue;
        }

        if (robFull()) {
            if (needSync())
                return;
            stalledOnRob_ = true;
            stallStart_ = now;
            return;
        }

        if (laneMode_) {
            // Lane fast path: fault-free translation + private L1.
            // An unmapped page or an L1 miss parks the core for the
            // boundary drain; an L1 hit completes inline with the
            // exact legacy timing (hit latency x visibility).
            if (faultResolved_) {
                faultResolved_ = false;
                chargeCycles(
                    static_cast<double>(params_.pageFaultPenalty));
            }
            const auto pa =
                vm_.lookup(*task_, pendingEntry_->vaddr);
            if (!pa) {
                laneWait_ = LaneWait::Fault;
                laneWaitTick_ = localTick_;
                parkedFaultVaddr_ = pendingEntry_->vaddr;
                return;  // resumed by ClusterFabric::completeFault
            }

            const bool isWrite = pendingEntry_->isWrite;
            const auto l1 = caches_.l1Access(id_, *pa, isWrite);
            if (l1.hit) {
                chargeInstructions(1);
                ++task_->memOps;
                if (l1.latency > 0) {
                    chargeCycles(static_cast<double>(l1.latency)
                                 * params_.hitLatencyVisibility);
                }
                pendingEntry_.reset();
                continue;
            }

            parkedL2_ = cache::L2Lookup{*pa, task_->pid(), isWrite,
                                        l1.victimValid,
                                        l1.victimDirty,
                                        l1.victimAddr};
            laneWait_ = LaneWait::L2;
            laneWaitTick_ = localTick_;
            return;  // resumed by ClusterFabric::completeL2
        }

        bool faulted = false;
        const Addr paddr =
            vm_.translate(*task_, pendingEntry_->vaddr, &faulted);
        if (faulted)
            chargeCycles(
                static_cast<double>(params_.pageFaultPenalty));

        const bool isWrite = pendingEntry_->isWrite;
        const auto res = caches_.access(id_, task_->pid(), paddr,
                                        isWrite);
        chargeInstructions(1);
        ++task_->memOps;

        if (!res.dramMiss && res.latency > 0) {
            // Hit latency partially exposed past the OoO window.
            chargeCycles(static_cast<double>(res.latency)
                         * params_.hitLatencyVisibility);
        }

        const Addr lineMask =
            ~(static_cast<Addr>(caches_.l2().params().lineBytes) - 1);
        for (int i = 0; i < res.writebackCount; ++i)
            pendingWritebacks_.push_back(res.writebacks[i] & lineMask);

        if (res.dramMiss) {
            pendingMiss_ = paddr & lineMask;
            pendingMissIdx_ = instrIdx_;
            pendingMissSequential_ = pendingEntry_->sequential;
            pendingMissDependent_ = pendingEntry_->dependent;
        }

        pendingEntry_.reset();
        // Stages A/B pick up the generated DRAM traffic next loop.
    }
}

void
Core::registerStats(StatRegistry &reg, const std::string &prefix)
{
    reg.add(prefix + ".instrsIssued", &instrsIssued);
    reg.add(prefix + ".dramReads", &dramReads);
    reg.add(prefix + ".dramWrites", &dramWrites);
    reg.add(prefix + ".robStallTicks", &robStallTicks);
    reg.add(prefix + ".mshrStallTicks", &mshrStallTicks);
    reg.add(prefix + ".mcBackpressureEvents", &mcBackpressureEvents);
    reg.add(prefix + ".contextSwitches", &contextSwitches);
    reg.add(prefix + ".droppedWritebacks", &droppedWritebacks);
}

} // namespace refsched::cpu
