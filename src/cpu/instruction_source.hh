/**
 * @file
 * The instruction stream a core consumes for a task.
 *
 * Trace entries are run-length encoded: each entry carries a count
 * of non-memory instructions (gap) followed by one memory operation.
 * Sources are infinite; the experiment runner bounds simulations by
 * time, like the paper bounds them by instruction count.
 */

#ifndef REFSCHED_CPU_INSTRUCTION_SOURCE_HH
#define REFSCHED_CPU_INSTRUCTION_SOURCE_HH

#include <cstdint>

#include "simcore/types.hh"

namespace refsched::cpu
{

/** gap non-memory instructions, then one memory access. */
struct TraceEntry
{
    std::uint32_t gap = 0;
    bool isWrite = false;

    /**
     * The access is part of a sequential stream.  Such accesses are
     * trivially covered by a stride prefetcher / deep MLP, so the
     * core issues their DRAM misses without blocking retirement on
     * them (bandwidth-bound behaviour); random accesses block the
     * ROB head (latency-bound behaviour).
     */
    bool sequential = false;

    /**
     * The access depends on the previous miss (pointer chasing): the
     * core cannot issue it to DRAM until earlier blocking misses
     * have returned, serialising the chain (MLP = 1).
     */
    bool dependent = false;

    Addr vaddr = 0;
};

class InstructionSource
{
  public:
    virtual ~InstructionSource() = default;

    /** Produce the next trace entry. */
    virtual TraceEntry next() = 0;

    /**
     * Cycles-per-instruction of the non-memory work, modelling ILP
     * limits the issue width alone does not capture.
     */
    virtual double baseCpi() const { return 0.5; }
};

} // namespace refsched::cpu

#endif // REFSCHED_CPU_INSTRUCTION_SOURCE_HH
