/**
 * @file
 * Figure 13: results with 32 ms retention (operation above 85C),
 * 2 ms quantum, normalized to all-bank refresh.
 *
 * Paper shape: co-design +34.1%/+23.4%/+16.4% over all-bank and
 * +6.7%/+6.3%/+3.9% over per-bank at 32/24/16 Gb -- roughly double
 * the 64 ms benefit, because refresh runs twice as often.
 */

#include "bench_util.hh"

using namespace refsched;
using namespace refsched::bench;
using core::Policy;

int
main(int argc, char **argv)
{
    const auto opts = parseArgs(argc, argv);
    const auto workloads = workloadNames(opts);
    const Tick tREFW = milliseconds(32.0);
    const std::vector<dram::DensityGb> densities{
        dram::DensityGb::d16, dram::DensityGb::d24,
        dram::DensityGb::d32};

    std::cout << "Figure 13: 32 ms retention (beyond 85 degC), "
                 "2 ms quantum\n\n";

    GridRunner grid(opts);
    struct Cell
    {
        std::size_t ab, pb, cd;
    };
    // cells[density][workload]
    std::vector<std::vector<Cell>> cells(densities.size());
    for (std::size_t d = 0; d < densities.size(); ++d) {
        for (const auto &wl : workloads) {
            cells[d].push_back(
                {grid.add(wl, Policy::AllBank, densities[d], tREFW),
                 grid.add(wl, Policy::PerBank, densities[d], tREFW),
                 grid.add(wl, Policy::CoDesign, densities[d],
                          tREFW)});
        }
    }
    grid.run();

    core::Table table({"density", "per-bank vs all-bank",
                       "co-design vs all-bank",
                       "co-design vs per-bank"});
    for (std::size_t d = 0; d < densities.size(); ++d) {
        std::vector<double> pbAll, cdAll, cdOverPb;
        for (std::size_t w = 0; w < workloads.size(); ++w) {
            const auto &ab = grid[cells[d][w].ab];
            const auto &pb = grid[cells[d][w].pb];
            const auto &cd = grid[cells[d][w].cd];
            pbAll.push_back(pb.speedupOver(ab));
            cdAll.push_back(cd.speedupOver(ab));
            cdOverPb.push_back(cd.speedupOver(pb));
        }
        table.addRow({dram::toString(densities[d]),
                      core::pctImprovement(geomean(pbAll)),
                      core::pctImprovement(geomean(cdAll)),
                      core::pctImprovement(geomean(cdOverPb))});
    }

    emit(opts, table, "fig13");
    std::cout << "\nPaper reference: co-design +34.1%/+23.4%/+16.4% "
                 "over all-bank and\n+6.7%/+6.3%/+3.9% over per-bank "
                 "at 32/24/16 Gb.\n";
    return 0;
}
