/**
 * @file
 * Figure 13: results with 32 ms retention (operation above 85C),
 * 2 ms quantum, normalized to all-bank refresh.
 *
 * Paper shape: co-design +34.1%/+23.4%/+16.4% over all-bank and
 * +6.7%/+6.3%/+3.9% over per-bank at 32/24/16 Gb -- roughly double
 * the 64 ms benefit, because refresh runs twice as often.
 */

#include "bench_util.hh"

using namespace refsched;
using namespace refsched::bench;
using core::Policy;

int
main(int argc, char **argv)
{
    const auto opts = parseArgs(argc, argv);
    const auto workloads = workloadNames(opts);
    const Tick tREFW = milliseconds(32.0);

    std::cout << "Figure 13: 32 ms retention (beyond 85 degC), "
                 "2 ms quantum\n\n";

    core::Table table({"density", "per-bank vs all-bank",
                       "co-design vs all-bank",
                       "co-design vs per-bank"});
    for (auto density : {dram::DensityGb::d16, dram::DensityGb::d24,
                         dram::DensityGb::d32}) {
        std::vector<double> pbAll, cdAll, cdOverPb;
        for (const auto &wl : workloads) {
            const auto ab =
                runCell(opts, wl, Policy::AllBank, density, tREFW);
            const auto pb =
                runCell(opts, wl, Policy::PerBank, density, tREFW);
            const auto cd =
                runCell(opts, wl, Policy::CoDesign, density, tREFW);
            pbAll.push_back(pb.speedupOver(ab));
            cdAll.push_back(cd.speedupOver(ab));
            cdOverPb.push_back(cd.speedupOver(pb));
        }
        table.addRow({dram::toString(density),
                      core::pctImprovement(geomean(pbAll)),
                      core::pctImprovement(geomean(cdAll)),
                      core::pctImprovement(geomean(cdOverPb))});
    }

    emit(opts, table);
    std::cout << "\nPaper reference: co-design +34.1%/+23.4%/+16.4% "
                 "over all-bank and\n+6.7%/+6.3%/+3.9% over per-bank "
                 "at 32/24/16 Gb.\n";
    return 0;
}
