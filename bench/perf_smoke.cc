/**
 * @file
 * Simulation-performance smoke bench: the perf trajectory's data
 * source.
 *
 * Runs a fixed three-config set -- all-bank refresh at 32 Gb (the
 * refresh-heaviest baseline), per-bank round-robin, and the paper's
 * co-design -- and reports, per config:
 *
 *   simMs            simulated milliseconds covered by the run
 *   wallMs           host wall-clock for System::run
 *   events           kernel events executed across every lane
 *   events/quantum   executed events per simulated scheduling quantum
 *   Mticks/s         simulated ticks per wall second, in millions
 *
 * Tables are archived through the standard --json flag (use
 * `--json BENCH_PERF.json`).  At the default parameters a second
 * table compares against the seed-controller reference measured
 * before the wake-precise optimization (PR 3), tracking the event
 * and wall-clock trajectory.
 *
 * Regression mode (used by tools/perf_regress.sh):
 *
 *   perf_smoke --check BASELINE.json [--wall-tol PCT] [--events-only]
 *
 * re-runs the set and compares against a previously archived
 * BENCH_PERF.json: events and events/quantum must match exactly
 * (the simulation is deterministic, sharded or not), wall-clock may
 * regress by at most PCT percent and Mticks/s may drop by the same
 * factor (default 20; faster is never a failure; --events-only
 * skips both host-speed checks for heterogeneous machines).  Exits
 * non-zero on any regression.
 *
 * The header line and each row report the host core count and the
 * threads a config needs (kernel workers + main).  Host-speed
 * checks of a threaded row are SKIPPED (visibly) when hostCores <
 * threads needed: timing an oversubscribed run measures the host,
 * not the simulator.  Event checks always run.
 */

#include <chrono>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <thread>

#include "bench_util.hh"

using namespace refsched;
using namespace refsched::bench;
using core::Policy;

namespace
{

struct SmokeConfig
{
    const char *name;
    Policy policy;
    int channels = 1;
    int shards = 0;     ///< 0 = legacy kernel, >0 = sharded kernel
    int coreLanes = 0;  ///< core-cluster lanes (0 = cores on main)
    int cores = 2;
    /** Open-loop serving spec (ServingConfig::parse), or null. */
    const char *serving = nullptr;
    /** Run with epoch-sampled telemetry enabled. */
    bool telemetry = false;

    /** Worker threads the threaded kernel wants, plus the main
     *  thread.  1 for the single-threaded rows. */
    int
    threadsNeeded() const
    {
        return shards + coreLanes > 0 ? shards + coreLanes + 1 : 1;
    }
};

/** The fixed config set; order is part of the archive format.  The
 *  2-channel co-design cell exercises the multi-controller scan
 *  paths; the -sh2 cell runs the same machine on the sharded kernel
 *  with one worker per channel; the -cl rows add core-cluster lanes
 *  (the -sh4-cl8 row is the 8-core 4-channel co-design target of
 *  the core-lane work).  Host-speed checks for threaded rows are
 *  skipped on hosts with fewer cores than the row needs. */
constexpr SmokeConfig kConfigs[] = {
    {"allbank-32gb", Policy::AllBank, 1},
    {"perbank-32gb", Policy::PerBank, 1},
    {"codesign-32gb", Policy::CoDesign, 1},
    {"codesign-32gb-2ch", Policy::CoDesign, 2},
    {"codesign-32gb-2ch-sh2", Policy::CoDesign, 2, 2},
    {"codesign-32gb-2ch-cl2", Policy::CoDesign, 2, 0, 2},
    {"codesign-32gb-2ch-sh2-cl2", Policy::CoDesign, 2, 2, 2},
    {"codesign-32gb-8c-4ch-sh4-cl8", Policy::CoDesign, 4, 4, 8, 8},
    // Serving rows ride at the END so the legacy baseline prefix
    // stays byte-identical; the injector runs on the main lane and
    // adds no worker thread (threadsNeeded is unchanged).
    {"codesign-32gb-2ch-serving", Policy::CoDesign, 2, 0, 0, 2,
     "arrival=mmpp,load=0.4,pool=8,queue=32,lines=4"},
    {"codesign-32gb-2ch-sh2-cl2-serving", Policy::CoDesign, 2, 2, 2,
     2, "arrival=mmpp,load=0.4,pool=8,queue=32,lines=4"},
    // Telemetry rows, also at the END.  The sharded row must execute
    // exactly the events of its telemetry-off twin above (sampling
    // is a boundary hook, not an event); the legacy row adds one
    // periodic sampling event per period.  Earlier rows running with
    // telemetry disabled and events unchanged is the perf gate's
    // zero-cost-when-off evidence.
    {"codesign-32gb-2ch-sh2-cl2-telem", Policy::CoDesign, 2, 2, 2, 2,
     nullptr, true},
    {"codesign-32gb-telem", Policy::CoDesign, 1, 0, 0, 2, nullptr,
     true},
};

/**
 * Seed-controller reference (commit a545fe5, pre wake-precise
 * scheduling), measured at the default parameters: WL-1, 32 Gb,
 * --scale 128 --warmup 8 --measure 16, single-threaded, Release.
 * Events are exact (deterministic); wall-clock is indicative of the
 * reference machine and only used for the trajectory table.
 */
struct SeedRef
{
    double eventsPerQuantum;
    double wallMs;
};
constexpr SeedRef kSeedRef[] = {
    {27608.2, 124.8},  // allbank-32gb
    {27833.8, 148.3},  // perbank-32gb
    {27747.1, 164.8},  // codesign-32gb
};

struct SmokeResult
{
    std::string name;
    std::string policy;
    double simMs = 0.0;
    double wallMs = 0.0;
    std::uint64_t events = 0;
    double eventsPerQuantum = 0.0;
    double mticksPerSec = 0.0;
    int threadsNeeded = 1;
};

int
hostCores()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n > 0 ? static_cast<int>(n) : 1;
}

SmokeResult
runConfig(const SmokeConfig &sc, const BenchOptions &opts)
{
    core::SystemConfig cfg = core::makeConfig(
        "WL-1", sc.policy, dram::DensityGb::d32, milliseconds(64.0),
        sc.cores, /*tasksPerCore=*/4, opts.timeScale);
    cfg.channels = sc.channels;
    cfg.shards = sc.shards;
    cfg.coreLanes = sc.coreLanes;
    if (sc.serving)
        cfg.serving = workload::ServingConfig::parse(sc.serving);
    cfg.telemetry.enabled = sc.telemetry;

    core::System sys(cfg);
    const auto t0 = std::chrono::steady_clock::now();
    sys.run(opts.warmupQuanta, opts.measureQuanta);
    const auto t1 = std::chrono::steady_clock::now();

    SmokeResult r;
    r.name = sc.name;
    r.policy = core::toString(sc.policy);
    r.wallMs = std::chrono::duration<double, std::milli>(t1 - t0)
        .count();
    r.simMs = static_cast<double>(sys.eventQueue().now())
        / static_cast<double>(kPsPerMs);
    r.events = sys.executedEvents();
    const int quanta = opts.warmupQuanta + opts.measureQuanta;
    r.eventsPerQuantum =
        static_cast<double>(r.events) / static_cast<double>(quanta);
    r.mticksPerSec = r.wallMs > 0.0
        ? static_cast<double>(sys.eventQueue().now())
            / (r.wallMs * 1e3)  // ticks/ms -> Mticks/s
        : 0.0;
    r.threadsNeeded = sc.threadsNeeded();
    return r;
}

// ---------------------------------------------------------------
// Baseline comparison (--check): parse the BENCH_PERF.json archive
// written by a previous run and diff events / wall-clock.
// ---------------------------------------------------------------

/** Row cells of the "perf_smoke" table in an archived JSON file.
 *  The archive format is ours (bench_util JsonArchive): every cell
 *  is a quoted string, rows are arrays of cells. */
std::vector<std::vector<std::string>>
readBaselineRows(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        fatal("cannot read baseline file: ", path);
    std::stringstream ss;
    ss << is.rdbuf();
    const std::string text = ss.str();

    const auto label = text.find("\"label\": \"perf_smoke\"");
    if (label == std::string::npos)
        fatal(path, ": no perf_smoke table in archive");
    const auto rowsKey = text.find("\"rows\": [", label);
    if (rowsKey == std::string::npos)
        fatal(path, ": malformed archive (no rows)");

    std::vector<std::vector<std::string>> rows;
    std::size_t i = rowsKey + 9;
    int depth = 1;  // inside the rows [...] array
    std::vector<std::string> cur;
    while (i < text.size() && depth > 0) {
        const char ch = text[i];
        if (ch == '[') {
            ++depth;
            cur.clear();
            ++i;
        } else if (ch == ']') {
            --depth;
            if (depth == 1 && !cur.empty())
                rows.push_back(cur);
            ++i;
        } else if (ch == '"') {
            std::string cell;
            ++i;
            while (i < text.size() && text[i] != '"') {
                if (text[i] == '\\' && i + 1 < text.size())
                    ++i;
                cell += text[i++];
            }
            ++i;  // closing quote
            cur.push_back(cell);
        } else {
            ++i;
        }
    }
    return rows;
}

int
checkAgainstBaseline(const std::vector<SmokeResult> &now,
                     const std::string &path, double wallTolPct,
                     bool eventsOnly)
{
    const auto rows = readBaselineRows(path);
    bool ok = true;

    for (const auto &r : now) {
        const std::vector<std::string> *base = nullptr;
        for (const auto &row : rows) {
            if (!row.empty() && row[0] == r.name) {
                base = &row;
                break;
            }
        }
        if (!base || base->size() < 7) {
            std::cerr << r.name << ": missing from baseline " << path
                      << "\n";
            ok = false;
            continue;
        }
        const std::uint64_t baseEvents =
            std::strtoull((*base)[4].c_str(), nullptr, 10);
        const double baseWall = std::atof((*base)[3].c_str());
        const std::string &baseEpq = (*base)[5];
        const double baseMticks = std::atof((*base)[6].c_str());

        if (r.events != baseEvents) {
            std::cerr << r.name << ": events REGRESSED: " << r.events
                      << " executed vs baseline " << baseEvents
                      << " (simulation is deterministic; an intended"
                         " change must update the baseline)\n";
            ok = false;
        } else {
            std::cout << r.name << ": events ok (" << r.events
                      << ")\n";
        }

        // events/quantum is derived from the deterministic event
        // count; compare the formatted cell so the archive and the
        // live run round identically.
        if (core::fmt(r.eventsPerQuantum, 1) != baseEpq) {
            std::cerr << r.name << ": events/quantum REGRESSED: "
                      << core::fmt(r.eventsPerQuantum, 1)
                      << " vs baseline " << baseEpq << "\n";
            ok = false;
        }

        if (eventsOnly)
            continue;
        // A threaded row timed on a host with fewer cores than the
        // kernel's worker count measures oversubscription, not the
        // simulator -- skip the host-speed checks VISIBLY rather
        // than recording a bogus regression.
        if (hostCores() < r.threadsNeeded) {
            std::cout << r.name
                      << ": wall-clock/Mticks SKIPPED (hostCores="
                      << hostCores() << " < " << r.threadsNeeded
                      << " threads needed)\n";
            continue;
        }
        const double limit = baseWall * (1.0 + wallTolPct / 100.0);
        if (r.wallMs > limit) {
            std::cerr << r.name << ": wall-clock REGRESSED: "
                      << core::fmt(r.wallMs, 1) << " ms vs baseline "
                      << core::fmt(baseWall, 1) << " ms (+"
                      << core::fmt(wallTolPct, 0)
                      << "% tolerance exceeded)\n";
            ok = false;
        } else {
            std::cout << r.name << ": wall-clock ok ("
                      << core::fmt(r.wallMs, 1) << " ms vs "
                      << core::fmt(baseWall, 1) << " ms baseline)\n";
        }
        const double floor =
            baseMticks / (1.0 + wallTolPct / 100.0);
        if (baseMticks > 0.0 && r.mticksPerSec < floor) {
            std::cerr << r.name << ": Mticks/s REGRESSED: "
                      << core::fmt(r.mticksPerSec, 2)
                      << " vs baseline " << core::fmt(baseMticks, 2)
                      << " (floor " << core::fmt(floor, 2) << ")\n";
            ok = false;
        } else {
            std::cout << r.name << ": Mticks/s ok ("
                      << core::fmt(r.mticksPerSec, 2) << " vs "
                      << core::fmt(baseMticks, 2) << " baseline)\n";
        }
    }
    return ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    // Strip the regression-mode flags before the shared parser sees
    // the command line.
    std::string checkPath;
    double wallTolPct = 20.0;
    bool eventsOnly = false;
    std::vector<char *> rest;
    for (int i = 0; i < argc; ++i) {
        const std::string a = argv[i];
        if (i > 0 && a == "--check" && i + 1 < argc) {
            checkPath = argv[++i];
        } else if (i > 0 && a == "--wall-tol" && i + 1 < argc) {
            wallTolPct = std::atof(argv[++i]);
        } else if (i > 0 && a == "--events-only") {
            eventsOnly = true;
        } else {
            rest.push_back(argv[i]);
        }
    }
    const auto opts =
        parseArgs(static_cast<int>(rest.size()), rest.data());

    std::vector<SmokeResult> results;
    for (const auto &sc : kConfigs)
        results.push_back(runConfig(sc, opts));

    core::Table table({"config", "policy", "simMs", "wallMs",
                       "events", "events/quantum", "Mticks/s",
                       "threads"});
    for (const auto &r : results) {
        table.addRow({r.name, r.policy, core::fmt(r.simMs, 2),
                      core::fmt(r.wallMs, 2),
                      std::to_string(r.events),
                      core::fmt(r.eventsPerQuantum, 1),
                      core::fmt(r.mticksPerSec, 2),
                      std::to_string(r.threadsNeeded)});
    }
    std::cout << "Simulation performance smoke (WL-1, 32 Gb, scale "
              << opts.timeScale << ", hostCores " << hostCores()
              << ")\n\n";
    emit(opts, table, "perf_smoke");
    std::cout << "\n";

    // Trajectory vs the seed controller, only meaningful at the
    // parameters the reference was measured with.
    const bool defaults = opts.timeScale == 128
        && opts.warmupQuanta == 8 && opts.measureQuanta == 16
        && kSeedRef[0].eventsPerQuantum > 0.0;
    if (defaults) {
        core::Table traj({"config", "seed events/q", "events/q",
                          "events reduction", "seed wallMs", "wallMs",
                          "wall speedup"});
        const std::size_t refs =
            sizeof(kSeedRef) / sizeof(kSeedRef[0]);
        for (std::size_t i = 0; i < results.size() && i < refs; ++i) {
            const auto &r = results[i];
            const auto &s = kSeedRef[i];
            traj.addRow(
                {r.name, core::fmt(s.eventsPerQuantum, 1),
                 core::fmt(r.eventsPerQuantum, 1),
                 core::fmt(s.eventsPerQuantum / r.eventsPerQuantum, 2)
                     + "x",
                 core::fmt(s.wallMs, 1), core::fmt(r.wallMs, 1),
                 core::fmt(s.wallMs / r.wallMs, 2) + "x"});
        }
        std::cout << "Trajectory vs seed controller (pre"
                     " wake-precise scheduling)\n\n";
        emit(opts, traj, "perf_vs_seed");
        std::cout << "\n";
    }

    if (!checkPath.empty())
        return checkAgainstBaseline(results, checkPath, wallTolPct,
                                    eventsOnly);
    return 0;
}
