/**
 * @file
 * Extension bench: DRAM energy across refresh policies.
 *
 * Refresh energy itself is policy-invariant (the same rows are
 * refreshed either way); what changes is how much *work* is done in
 * the same wall-clock window.  The comparison metric is therefore
 * energy per committed instruction (pJ/instr): masking refresh
 * overheads lets the co-design amortize the fixed refresh+background
 * energy over more instructions, improving system-level efficiency
 * -- the energy framing used by Coordinated Refresh (Bhati et al.,
 * ISLPED'13) among the paper's related work.
 */

#include "bench_util.hh"

using namespace refsched;
using namespace refsched::bench;
using core::Policy;

int
main(int argc, char **argv)
{
    const auto opts = parseArgs(argc, argv);
    const auto workloads = workloadNames(opts);
    const auto density = dram::DensityGb::d32;
    const std::vector<Policy> policies{Policy::AllBank,
                                       Policy::PerBank,
                                       Policy::CoDesign,
                                       Policy::NoRefresh};

    std::cout << "DRAM energy by refresh policy (32Gb, measured "
                 "window)\n\n";

    GridRunner grid(opts);
    // cells[workload][policy]; policies[0] doubles as the baseline.
    std::vector<std::vector<std::size_t>> cells(workloads.size());
    for (std::size_t w = 0; w < workloads.size(); ++w)
        for (auto policy : policies)
            cells[w].push_back(
                grid.add(workloads[w], policy, density));
    grid.run();

    core::Table table({"workload", "policy", "total (mJ)",
                       "refresh share", "pJ/instr",
                       "EPI vs all-bank"});
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        const auto &base = grid[cells[w][0]];
        for (std::size_t p = 0; p < policies.size(); ++p) {
            const auto &m = grid[cells[w][p]];
            table.addRow(
                {workloads[w], toString(policies[p]),
                 core::fmt(m.energy.totalPj() / 1e9, 3),
                 core::fmt(m.energy.refreshShare() * 100.0, 1) + "%",
                 core::fmt(m.energyPerInstructionPj, 1),
                 core::pctImprovement(base.energyPerInstructionPj
                                      / m.energyPerInstructionPj)});
        }
    }

    emit(opts, table, "energy_refresh");
    std::cout << "\nExpectation: total refresh picojoules are nearly "
                 "identical across refreshing\npolicies (row "
                 "coverage is fixed); the co-design's EPI advantage "
                 "comes from doing\nmore work per window.\n";
    return 0;
}
