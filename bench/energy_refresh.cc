/**
 * @file
 * Extension bench: DRAM energy across refresh policies.
 *
 * Refresh energy itself is policy-invariant (the same rows are
 * refreshed either way); what changes is how much *work* is done in
 * the same wall-clock window.  The comparison metric is therefore
 * energy per committed instruction (pJ/instr): masking refresh
 * overheads lets the co-design amortize the fixed refresh+background
 * energy over more instructions, improving system-level efficiency
 * -- the energy framing used by Coordinated Refresh (Bhati et al.,
 * ISLPED'13) among the paper's related work.
 */

#include "bench_util.hh"

using namespace refsched;
using namespace refsched::bench;
using core::Policy;

int
main(int argc, char **argv)
{
    const auto opts = parseArgs(argc, argv);
    const auto workloads = workloadNames(opts);
    const auto density = dram::DensityGb::d32;

    std::cout << "DRAM energy by refresh policy (32Gb, measured "
                 "window)\n\n";

    core::Table table({"workload", "policy", "total (mJ)",
                       "refresh share", "pJ/instr",
                       "EPI vs all-bank"});
    for (const auto &wl : workloads) {
        const auto base = runCell(opts, wl, Policy::AllBank, density);
        for (auto policy : {Policy::AllBank, Policy::PerBank,
                            Policy::CoDesign, Policy::NoRefresh}) {
            const auto m = policy == Policy::AllBank
                ? base
                : runCell(opts, wl, policy, density);
            table.addRow(
                {wl, toString(policy),
                 core::fmt(m.energy.totalPj() / 1e9, 3),
                 core::fmt(m.energy.refreshShare() * 100.0, 1) + "%",
                 core::fmt(m.energyPerInstructionPj, 1),
                 core::pctImprovement(base.energyPerInstructionPj
                                      / m.energyPerInstructionPj)});
        }
    }

    emit(opts, table);
    std::cout << "\nExpectation: total refresh picojoules are nearly "
                 "identical across refreshing\npolicies (row "
                 "coverage is fixed); the co-design's EPI advantage "
                 "comes from doing\nmore work per window.\n";
    return 0;
}
