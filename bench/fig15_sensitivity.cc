/**
 * @file
 * Figure 15: sensitivity to core count and consolidation ratio:
 * {2, 4} cores x {1:2, 1:4} tasks per core, per density, normalized
 * to all-bank refresh.
 *
 * Paper shape: the co-design consistently beats all-bank and
 * per-bank; at 1:2 each task gets only 4 banks per rank (vs 6 at
 * 1:4), so the gain shrinks but stays positive
 * (+14.2%/+11.2%/+8.9% over all-bank at 32/24/16 Gb for dual-core
 * 1:2).
 */

#include "bench_util.hh"

using namespace refsched;
using namespace refsched::bench;
using core::Policy;

int
main(int argc, char **argv)
{
    auto opts = parseArgs(argc, argv);
    const std::vector<std::string> workloads =
        opts.full ? workloadNames(opts)
                  : std::vector<std::string>{"WL-5", "WL-8"};
    const std::vector<std::pair<int, int>> configs{
        {2, 2}, {2, 4}, {4, 2}, {4, 4}};
    const std::vector<dram::DensityGb> densities{
        dram::DensityGb::d16, dram::DensityGb::d24,
        dram::DensityGb::d32};

    std::cout << "Figure 15: sensitivity to cores x consolidation "
                 "(average over " << workloads.size()
              << " workloads, vs all-bank)\n\n";

    GridRunner grid(opts);
    struct Cell
    {
        std::size_t ab, pb, cd;
    };
    // cells[config][density][workload]
    std::vector<std::vector<std::vector<Cell>>> cells(
        configs.size(),
        std::vector<std::vector<Cell>>(densities.size()));
    for (std::size_t c = 0; c < configs.size(); ++c) {
        const auto [cores, tpc] = configs[c];
        for (std::size_t d = 0; d < densities.size(); ++d) {
            for (const auto &wl : workloads) {
                cells[c][d].push_back(
                    {grid.add(wl, Policy::AllBank, densities[d],
                              milliseconds(64.0), cores, tpc),
                     grid.add(wl, Policy::PerBank, densities[d],
                              milliseconds(64.0), cores, tpc),
                     grid.add(wl, Policy::CoDesign, densities[d],
                              milliseconds(64.0), cores, tpc)});
            }
        }
    }
    grid.run();

    core::Table table({"config", "density", "per-bank", "co-design"});
    for (std::size_t c = 0; c < configs.size(); ++c) {
        const auto [cores, tpc] = configs[c];
        for (std::size_t d = 0; d < densities.size(); ++d) {
            std::vector<double> pbAll, cdAll;
            for (std::size_t w = 0; w < workloads.size(); ++w) {
                const auto &ab = grid[cells[c][d][w].ab];
                const auto &pb = grid[cells[c][d][w].pb];
                const auto &cd = grid[cells[c][d][w].cd];
                pbAll.push_back(pb.speedupOver(ab));
                cdAll.push_back(cd.speedupOver(ab));
            }
            table.addRow({std::to_string(cores) + " cores, 1:"
                              + std::to_string(tpc),
                          dram::toString(densities[d]),
                          core::pctImprovement(geomean(pbAll)),
                          core::pctImprovement(geomean(cdAll))});
        }
    }

    emit(opts, table, "fig15");
    std::cout << "\nPaper reference: co-design wins at every "
                 "consolidation point; dual-core 1:2\n(4 banks/task) "
                 "gives +14.2%/+11.2%/+8.9% over all-bank at "
                 "32/24/16 Gb.\n";
    return 0;
}
