/**
 * @file
 * Figure 15: sensitivity to core count and consolidation ratio:
 * {2, 4} cores x {1:2, 1:4} tasks per core, per density, normalized
 * to all-bank refresh.
 *
 * Paper shape: the co-design consistently beats all-bank and
 * per-bank; at 1:2 each task gets only 4 banks per rank (vs 6 at
 * 1:4), so the gain shrinks but stays positive
 * (+14.2%/+11.2%/+8.9% over all-bank at 32/24/16 Gb for dual-core
 * 1:2).
 */

#include "bench_util.hh"

using namespace refsched;
using namespace refsched::bench;
using core::Policy;

int
main(int argc, char **argv)
{
    auto opts = parseArgs(argc, argv);
    const std::vector<std::string> workloads =
        opts.full ? workloadNames(opts)
                  : std::vector<std::string>{"WL-5", "WL-8"};

    std::cout << "Figure 15: sensitivity to cores x consolidation "
                 "(average over " << workloads.size()
              << " workloads, vs all-bank)\n\n";

    core::Table table({"config", "density", "per-bank", "co-design"});
    for (const auto &[cores, tpc] :
         std::vector<std::pair<int, int>>{
             {2, 2}, {2, 4}, {4, 2}, {4, 4}}) {
        for (auto density :
             {dram::DensityGb::d16, dram::DensityGb::d24,
              dram::DensityGb::d32}) {
            std::vector<double> pbAll, cdAll;
            for (const auto &wl : workloads) {
                const auto ab =
                    runCell(opts, wl, Policy::AllBank, density,
                            milliseconds(64.0), cores, tpc);
                const auto pb =
                    runCell(opts, wl, Policy::PerBank, density,
                            milliseconds(64.0), cores, tpc);
                const auto cd =
                    runCell(opts, wl, Policy::CoDesign, density,
                            milliseconds(64.0), cores, tpc);
                pbAll.push_back(pb.speedupOver(ab));
                cdAll.push_back(cd.speedupOver(ab));
            }
            table.addRow({std::to_string(cores) + " cores, 1:"
                              + std::to_string(tpc),
                          dram::toString(density),
                          core::pctImprovement(geomean(pbAll)),
                          core::pctImprovement(geomean(cdAll))});
        }
    }

    emit(opts, table);
    std::cout << "\nPaper reference: co-design wins at every "
                 "consolidation point; dual-core 1:2\n(4 banks/task) "
                 "gives +14.2%/+11.2%/+8.9% over all-bank at "
                 "32/24/16 Gb.\n";
    return 0;
}
