/**
 * @file
 * Ablation: open-page vs closed-page row-buffer management under the
 * baseline and the co-design (the paper's Table 1 uses open-page;
 * related work debates the policy, e.g. Kaseridis et al.'s
 * minimalist open-page).
 *
 * Expectation: open-page wins whenever workloads have row locality
 * (streams); closed-page narrows the gap for purely random mixes.
 * The co-design's benefit is orthogonal: it survives either policy.
 */

#include "bench_util.hh"

using namespace refsched;
using namespace refsched::bench;
using core::Policy;

namespace
{

core::Metrics
runWith(const BenchOptions &opts, const std::string &wl, Policy policy,
        memctrl::PagePolicy page)
{
    auto cfg = core::makeConfig(wl, policy, dram::DensityGb::d32,
                                milliseconds(64.0), 2, 4,
                                opts.timeScale);
    cfg.mcParams.pagePolicy = page;
    core::RunOptions run;
    run.warmupQuanta = opts.warmupQuanta;
    run.measureQuanta = opts.measureQuanta;
    return core::runOnce(cfg, run);
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = parseArgs(argc, argv);
    const auto workloads = workloadNames(opts);

    std::cout << "Ablation: open-page vs closed-page row policy "
                 "(32Gb)\n\n";

    core::Table table({"workload", "open row-hit", "open IPC",
                       "closed IPC", "closed vs open",
                       "co-design gain (open)",
                       "co-design gain (closed)"});
    for (const auto &wl : workloads) {
        const auto abOpen = runWith(opts, wl, Policy::AllBank,
                                    memctrl::PagePolicy::Open);
        const auto abClosed = runWith(opts, wl, Policy::AllBank,
                                      memctrl::PagePolicy::Closed);
        const auto cdOpen = runWith(opts, wl, Policy::CoDesign,
                                    memctrl::PagePolicy::Open);
        const auto cdClosed = runWith(opts, wl, Policy::CoDesign,
                                      memctrl::PagePolicy::Closed);
        table.addRow(
            {wl, core::fmt(abOpen.rowHitRate * 100.0, 1) + "%",
             core::fmt(abOpen.harmonicMeanIpc),
             core::fmt(abClosed.harmonicMeanIpc),
             core::pctImprovement(abClosed.speedupOver(abOpen)),
             core::pctImprovement(cdOpen.speedupOver(abOpen)),
             core::pctImprovement(cdClosed.speedupOver(abClosed))});
    }

    emit(opts, table);
    return 0;
}
