/**
 * @file
 * Ablation: open-page vs closed-page row-buffer management under the
 * baseline and the co-design (the paper's Table 1 uses open-page;
 * related work debates the policy, e.g. Kaseridis et al.'s
 * minimalist open-page).
 *
 * Expectation: open-page wins whenever workloads have row locality
 * (streams); closed-page narrows the gap for purely random mixes.
 * The co-design's benefit is orthogonal: it survives either policy.
 */

#include "bench_util.hh"

using namespace refsched;
using namespace refsched::bench;
using core::Policy;

namespace
{

core::SystemConfig
pagedConfig(const BenchOptions &opts, const std::string &wl,
            Policy policy, memctrl::PagePolicy page)
{
    auto cfg = core::makeConfig(wl, policy, dram::DensityGb::d32,
                                milliseconds(64.0), 2, 4,
                                opts.timeScale);
    cfg.mcParams.pagePolicy = page;
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = parseArgs(argc, argv);
    const auto workloads = workloadNames(opts);

    std::cout << "Ablation: open-page vs closed-page row policy "
                 "(32Gb)\n\n";

    GridRunner grid(opts);
    struct Cell
    {
        std::size_t abOpen, abClosed, cdOpen, cdClosed;
    };
    std::vector<Cell> cells;
    for (const auto &wl : workloads) {
        cells.push_back(
            {grid.add(pagedConfig(opts, wl, Policy::AllBank,
                                  memctrl::PagePolicy::Open)),
             grid.add(pagedConfig(opts, wl, Policy::AllBank,
                                  memctrl::PagePolicy::Closed)),
             grid.add(pagedConfig(opts, wl, Policy::CoDesign,
                                  memctrl::PagePolicy::Open)),
             grid.add(pagedConfig(opts, wl, Policy::CoDesign,
                                  memctrl::PagePolicy::Closed))});
    }
    grid.run();

    core::Table table({"workload", "open row-hit", "open IPC",
                       "closed IPC", "closed vs open",
                       "co-design gain (open)",
                       "co-design gain (closed)"});
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        const auto &abOpen = grid[cells[w].abOpen];
        const auto &abClosed = grid[cells[w].abClosed];
        const auto &cdOpen = grid[cells[w].cdOpen];
        const auto &cdClosed = grid[cells[w].cdClosed];
        table.addRow(
            {workloads[w],
             core::fmt(abOpen.rowHitRate * 100.0, 1) + "%",
             core::fmt(abOpen.harmonicMeanIpc),
             core::fmt(abClosed.harmonicMeanIpc),
             core::pctImprovement(abClosed.speedupOver(abOpen)),
             core::pctImprovement(cdOpen.speedupOver(abOpen)),
             core::pctImprovement(cdClosed.speedupOver(abClosed))});
    }

    emit(opts, table, "abl_page_policy");
    return 0;
}
