/**
 * @file
 * Figure 12: DDR4 fine-granularity refresh (1x/2x/4x) vs the
 * co-design, normalized to the DDR4-1x all-bank baseline, 32 Gb.
 *
 * Paper shape: 2x and 4x modes are WORSE than 1x (tREFI shrinks 2x/4x
 * but tRFC only shrinks 1.35x/1.63x, so total refresh time grows);
 * the co-design beats all three.
 */

#include "bench_util.hh"

using namespace refsched;
using namespace refsched::bench;
using core::Policy;

int
main(int argc, char **argv)
{
    const auto opts = parseArgs(argc, argv);
    const auto workloads = workloadNames(opts);
    const auto density = dram::DensityGb::d32;

    std::cout << "Figure 12: DDR4 FGR modes vs co-design "
                 "(normalized to DDR4-1x all-bank), 32Gb\n\n";

    core::Table table(
        {"workload", "1x IPC", "2x", "4x", "co-design"});
    std::vector<double> x2All, x4All, cdAll;
    for (const auto &wl : workloads) {
        const auto x1 = runCell(opts, wl, Policy::AllBank, density);
        const auto x2 = runCell(opts, wl, Policy::Ddr4x2, density);
        const auto x4 = runCell(opts, wl, Policy::Ddr4x4, density);
        const auto cd = runCell(opts, wl, Policy::CoDesign, density);
        x2All.push_back(x2.speedupOver(x1));
        x4All.push_back(x4.speedupOver(x1));
        cdAll.push_back(cd.speedupOver(x1));
        table.addRow({wl, core::fmt(x1.harmonicMeanIpc),
                      core::pctImprovement(x2.speedupOver(x1)),
                      core::pctImprovement(x4.speedupOver(x1)),
                      core::pctImprovement(cd.speedupOver(x1))});
    }
    table.addRow({"geomean", "", core::pctImprovement(geomean(x2All)),
                  core::pctImprovement(geomean(x4All)),
                  core::pctImprovement(geomean(cdAll))});

    emit(opts, table);
    std::cout << "\nPaper reference: DDR4-2x/4x fare worse than 1x "
                 "(more refresh commands, tRFC\nscaled only "
                 "1.35x/1.63x); the co-design masks the entire "
                 "overhead.\n";
    return 0;
}
