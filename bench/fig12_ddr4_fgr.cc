/**
 * @file
 * Figure 12: DDR4 fine-granularity refresh (1x/2x/4x) vs the
 * co-design, normalized to the DDR4-1x all-bank baseline, 32 Gb.
 *
 * Paper shape: 2x and 4x modes are WORSE than 1x (tREFI shrinks 2x/4x
 * but tRFC only shrinks 1.35x/1.63x, so total refresh time grows);
 * the co-design beats all three.
 */

#include "bench_util.hh"

using namespace refsched;
using namespace refsched::bench;
using core::Policy;

int
main(int argc, char **argv)
{
    const auto opts = parseArgs(argc, argv);
    const auto workloads = workloadNames(opts);
    const auto density = dram::DensityGb::d32;

    std::cout << "Figure 12: DDR4 FGR modes vs co-design "
                 "(normalized to DDR4-1x all-bank), 32Gb\n\n";

    GridRunner grid(opts);
    struct Cell
    {
        std::size_t x1, x2, x4, cd;
    };
    std::vector<Cell> cells;
    for (const auto &wl : workloads) {
        cells.push_back({grid.add(wl, Policy::AllBank, density),
                         grid.add(wl, Policy::Ddr4x2, density),
                         grid.add(wl, Policy::Ddr4x4, density),
                         grid.add(wl, Policy::CoDesign, density)});
    }
    grid.run();

    core::Table table(
        {"workload", "1x IPC", "2x", "4x", "co-design"});
    std::vector<double> x2All, x4All, cdAll;
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        const auto &x1 = grid[cells[w].x1];
        const auto &x2 = grid[cells[w].x2];
        const auto &x4 = grid[cells[w].x4];
        const auto &cd = grid[cells[w].cd];
        x2All.push_back(x2.speedupOver(x1));
        x4All.push_back(x4.speedupOver(x1));
        cdAll.push_back(cd.speedupOver(x1));
        table.addRow({workloads[w], core::fmt(x1.harmonicMeanIpc),
                      core::pctImprovement(x2.speedupOver(x1)),
                      core::pctImprovement(x4.speedupOver(x1)),
                      core::pctImprovement(cd.speedupOver(x1))});
    }
    table.addRow({"geomean", "", core::pctImprovement(geomean(x2All)),
                  core::pctImprovement(geomean(x4All)),
                  core::pctImprovement(geomean(cdAll))});

    emit(opts, table, "fig12");
    std::cout << "\nPaper reference: DDR4-2x/4x fare worse than 1x "
                 "(more refresh commands, tRFC\nscaled only "
                 "1.35x/1.63x); the co-design masks the entire "
                 "overhead.\n";
    return 0;
}
