/**
 * @file
 * Shared plumbing for the figure-reproduction benches.
 *
 * Every bench accepts:
 *   --full        run all ten Table 2 workloads (default: a
 *                 representative five covering H/M/L classes)
 *   --scale N     ratio-preserving timeScale (default 128)
 *   --csv         emit CSV instead of an aligned table
 *
 * Runs are deterministic; the same invocation always reproduces the
 * same numbers.
 */

#ifndef REFSCHED_BENCH_BENCH_UTIL_HH
#define REFSCHED_BENCH_BENCH_UTIL_HH

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "core/report.hh"
#include "core/system.hh"
#include "workload/workloads.hh"

namespace refsched::bench
{

struct BenchOptions
{
    bool full = false;
    bool csv = false;
    unsigned timeScale = 128;
    int warmupQuanta = 8;
    int measureQuanta = 16;
};

inline BenchOptions
parseArgs(int argc, char **argv)
{
    BenchOptions opts;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--full") == 0) {
            opts.full = true;
        } else if (std::strcmp(argv[i], "--csv") == 0) {
            opts.csv = true;
        } else if (std::strcmp(argv[i], "--scale") == 0
                   && i + 1 < argc) {
            opts.timeScale =
                static_cast<unsigned>(std::atoi(argv[++i]));
        } else {
            std::cerr << "usage: " << argv[0]
                      << " [--full] [--csv] [--scale N]\n";
            std::exit(2);
        }
    }
    return opts;
}

/** Workloads to evaluate: all ten, or a class-covering subset. */
inline std::vector<std::string>
workloadNames(const BenchOptions &opts)
{
    if (opts.full) {
        std::vector<std::string> names;
        for (const auto &wl : workload::table2Workloads())
            names.push_back(wl.name);
        return names;
    }
    return {"WL-1", "WL-2", "WL-5", "WL-8", "WL-10"};
}

/** Run one experiment cell with the bench's standard lengths. */
inline core::Metrics
runCell(const BenchOptions &opts, const std::string &workload,
        core::Policy policy, dram::DensityGb density,
        Tick tREFW = milliseconds(64.0), int numCores = 2,
        int tasksPerCore = 4)
{
    auto cfg = core::makeConfig(workload, policy, density, tREFW,
                                numCores, tasksPerCore,
                                opts.timeScale);
    core::RunOptions run;
    run.warmupQuanta = opts.warmupQuanta;
    run.measureQuanta = opts.measureQuanta;
    return core::runOnce(cfg, run);
}

inline void
emit(const BenchOptions &opts, const core::Table &table)
{
    if (opts.csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);
}

/** Geometric mean of a vector of ratios. */
inline double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double product = 1.0;
    for (double x : xs)
        product *= x;
    return std::pow(product, 1.0 / static_cast<double>(xs.size()));
}

} // namespace refsched::bench

#endif // REFSCHED_BENCH_BENCH_UTIL_HH
