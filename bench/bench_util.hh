/**
 * @file
 * Shared plumbing for the figure-reproduction benches.
 *
 * Every bench accepts:
 *   --full        run all ten Table 2 workloads (default: a
 *                 representative five covering H/M/L classes)
 *   --scale N     ratio-preserving timeScale (default 128)
 *   --csv         emit CSV instead of an aligned table
 *   --jobs N      worker threads for the experiment grid (default:
 *                 all hardware threads; 1 = sequential)
 *   --warmup Q    warm-up quanta before the statistics reset
 *   --measure Q   measured quanta
 *   --json FILE   additionally archive every emitted table as JSON
 *                 (e.g. BENCH_fig10.json, for the perf trajectory)
 *
 * Runs are deterministic; the same invocation always reproduces the
 * same numbers, regardless of --jobs (each cell is an independent
 * deterministic simulation and results are ordered by submission).
 *
 * Bench structure: enumerate the full experiment grid first through
 * GridRunner::add (recording cell indices), call run() once to fan
 * the cells out across workers, then format tables from the
 * submission-ordered results.
 */

#ifndef REFSCHED_BENCH_BENCH_UTIL_HH
#define REFSCHED_BENCH_BENCH_UTIL_HH

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/experiment.hh"
#include "core/parallel_runner.hh"
#include "core/report.hh"
#include "core/system.hh"
#include "obs/timeline.hh"
#include "simcore/logging.hh"
#include "workload/workloads.hh"

namespace refsched::bench
{

struct BenchOptions
{
    bool full = false;
    bool csv = false;
    unsigned timeScale = 128;
    int warmupQuanta = 8;
    int measureQuanta = 16;
    /** Grid worker threads; 0 = hardware_concurrency. */
    int jobs = 0;
    /** When non-empty, archive emitted tables to this JSON file. */
    std::string jsonPath;
    /** argv[0], recorded for the JSON archive. */
    std::string benchName;
    /** Run the invariant checkers on every cell; any violation
     *  fails the bench with a diagnostic. */
    bool validate = false;
    /** When non-empty, each grid cell writes a Chrome trace-event
     *  timeline to "<prefix>.cell<N>.json". */
    std::string timelinePrefix;
    /** When non-empty, each grid cell writes its stats/metrics JSON
     *  to "<prefix>.cell<N>.json". */
    std::string statsJsonPrefix;
    /** When non-empty, each grid cell runs with sampled telemetry
     *  enabled and writes the series to "<prefix>.cell<N>.jsonl". */
    std::string telemetryPrefix;
};

namespace detail
{

/** Tables emitted so far, flushed to opts.jsonPath at exit. */
struct JsonArchive
{
    std::string path;
    std::string bench;
    std::string options;
    std::vector<std::pair<std::string, core::Table>> tables;

    ~JsonArchive()
    {
        if (path.empty() || tables.empty())
            return;
        std::ofstream os(path);
        if (!os) {
            std::cerr << "cannot write " << path << "\n";
            return;
        }
        os << "{\n  \"bench\": \"" << escape(bench) << "\",\n"
           << "  \"options\": " << options << ",\n"
           << "  \"tables\": [\n";
        for (std::size_t t = 0; t < tables.size(); ++t) {
            const auto &[label, table] = tables[t];
            os << "    {\"label\": \"" << escape(label)
               << "\", \"headers\": ";
            writeRow(os, table.headers());
            os << ", \"rows\": [";
            const auto &rows = table.rowData();
            for (std::size_t r = 0; r < rows.size(); ++r) {
                if (r > 0)
                    os << ", ";
                writeRow(os, rows[r]);
            }
            os << "]}" << (t + 1 < tables.size() ? "," : "") << "\n";
        }
        os << "  ]\n}\n";
    }

    static std::string
    escape(const std::string &s)
    {
        std::string out;
        out.reserve(s.size());
        for (char ch : s) {
            if (ch == '"' || ch == '\\')
                out += '\\';
            if (ch == '\n') {
                out += "\\n";
                continue;
            }
            out += ch;
        }
        return out;
    }

    static void
    writeRow(std::ostream &os, const std::vector<std::string> &cells)
    {
        os << "[";
        for (std::size_t i = 0; i < cells.size(); ++i) {
            if (i > 0)
                os << ", ";
            os << "\"" << escape(cells[i]) << "\"";
        }
        os << "]";
    }
};

inline JsonArchive &
jsonArchive()
{
    static JsonArchive archive;
    return archive;
}

} // namespace detail

[[noreturn]] inline void
usage(const char *argv0)
{
    std::cerr
        << "usage: " << argv0
        << " [--full] [--csv] [--scale N] [--jobs N]"
           " [--warmup Q] [--measure Q] [--json FILE] [--validate]\n"
           "  --full       run all ten Table 2 workloads (default:"
           " a representative five)\n"
           "  --csv        emit CSV instead of aligned tables\n"
           "  --scale N    ratio-preserving timeScale divisor"
           " (default 128)\n"
           "  --jobs N     worker threads for the experiment grid\n"
           "               (default: all hardware threads;"
           " 1 = sequential)\n"
           "  --warmup Q   warm-up quanta before the stats reset"
           " (default 8)\n"
           "  --measure Q  measured quanta (default 16)\n"
           "  --json FILE  archive emitted tables as JSON"
           " (e.g. BENCH_fig10.json)\n"
           "  --validate   run the invariant checkers on every cell"
           " (fails on any violation)\n"
           "  --timeline-prefix P   write a Chrome trace-event"
           " timeline per grid cell (P.cellN.json)\n"
           "  --stats-json-prefix P write stats/metrics JSON per"
           " grid cell (P.cellN.json)\n"
           "  --telemetry-prefix P  sample telemetry per grid cell"
           " and write the\n"
           "               time-series JSONL to P.cellN.jsonl\n";
    std::exit(2);
}

inline BenchOptions
parseArgs(int argc, char **argv)
{
    BenchOptions opts;
    opts.benchName = argc > 0 ? argv[0] : "bench";

    auto intArg = [&](int &i) {
        if (i + 1 >= argc)
            usage(argv[0]);
        return std::atoi(argv[++i]);
    };

    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--full") == 0) {
            opts.full = true;
        } else if (std::strcmp(argv[i], "--csv") == 0) {
            opts.csv = true;
        } else if (std::strcmp(argv[i], "--scale") == 0) {
            opts.timeScale = static_cast<unsigned>(intArg(i));
        } else if (std::strcmp(argv[i], "--jobs") == 0) {
            opts.jobs = intArg(i);
        } else if (std::strcmp(argv[i], "--warmup") == 0) {
            opts.warmupQuanta = intArg(i);
        } else if (std::strcmp(argv[i], "--measure") == 0) {
            opts.measureQuanta = intArg(i);
        } else if (std::strcmp(argv[i], "--json") == 0) {
            if (i + 1 >= argc)
                usage(argv[0]);
            opts.jsonPath = argv[++i];
        } else if (std::strcmp(argv[i], "--validate") == 0) {
            opts.validate = true;
        } else if (std::strcmp(argv[i], "--timeline-prefix") == 0) {
            if (i + 1 >= argc)
                usage(argv[0]);
            opts.timelinePrefix = argv[++i];
        } else if (std::strcmp(argv[i], "--stats-json-prefix") == 0) {
            if (i + 1 >= argc)
                usage(argv[0]);
            opts.statsJsonPrefix = argv[++i];
        } else if (std::strcmp(argv[i], "--telemetry-prefix") == 0) {
            if (i + 1 >= argc)
                usage(argv[0]);
            opts.telemetryPrefix = argv[++i];
        } else {
            usage(argv[0]);
        }
    }

    // Reject values the simulator would only panic on later.
    if (opts.timeScale < 1 || opts.warmupQuanta < 0
        || opts.measureQuanta < 1) {
        std::cerr << "invalid --scale/--warmup/--measure value\n";
        usage(argv[0]);
    }

    if (!opts.jsonPath.empty()) {
        auto &archive = detail::jsonArchive();
        archive.path = opts.jsonPath;
        archive.bench = opts.benchName;
        archive.options = "{\"full\": "
            + std::string(opts.full ? "true" : "false")
            + ", \"scale\": " + std::to_string(opts.timeScale)
            + ", \"warmup\": " + std::to_string(opts.warmupQuanta)
            + ", \"measure\": " + std::to_string(opts.measureQuanta)
            + ", \"jobs\": " + std::to_string(opts.jobs) + "}";
    }
    return opts;
}

/** Workloads to evaluate: all ten, or a class-covering subset. */
inline std::vector<std::string>
workloadNames(const BenchOptions &opts)
{
    if (opts.full) {
        std::vector<std::string> names;
        for (const auto &wl : workload::table2Workloads())
            names.push_back(wl.name);
        return names;
    }
    return {"WL-1", "WL-2", "WL-5", "WL-8", "WL-10"};
}

/**
 * Deferred experiment grid: benches enumerate every cell up front
 * (add returns the cell's index), run() fans the whole grid out over
 * a work-stealing thread pool, and operator[] retrieves the metrics
 * afterwards in submission order.
 */
class GridRunner
{
  public:
    explicit GridRunner(const BenchOptions &opts) : opts_(opts) {}

    /** Queue a standard Table 1 cell; returns its result index. */
    std::size_t
    add(const std::string &workload, core::Policy policy,
        dram::DensityGb density, Tick tREFW = milliseconds(64.0),
        int numCores = 2, int tasksPerCore = 4)
    {
        return add(core::makeConfig(workload, policy, density, tREFW,
                                    numCores, tasksPerCore,
                                    opts_.timeScale));
    }

    /** Queue a custom-configured cell (ablations). */
    std::size_t
    add(core::SystemConfig cfg)
    {
        cfg.validate = opts_.validate;

        // With per-cell observability artifacts requested, wrap the
        // cell in a thunk that attaches a timeline recorder and/or
        // enables sampled telemetry, and writes one artifact per
        // cell.  The simulation itself is unchanged (probes and
        // samplers observe, never steer), so results stay
        // byte-identical to the plain path and across --jobs.
        if (!opts_.timelinePrefix.empty()
            || !opts_.statsJsonPrefix.empty()
            || !opts_.telemetryPrefix.empty()) {
            const std::size_t idx = cells_.size();
            const auto run = runOptions();
            const std::string tlPrefix = opts_.timelinePrefix;
            const std::string sjPrefix = opts_.statsJsonPrefix;
            const std::string telPrefix = opts_.telemetryPrefix;
            if (!telPrefix.empty())
                cfg.telemetry.enabled = true;
            return add([cfg = std::move(cfg), run, tlPrefix, sjPrefix,
                        telPrefix, idx]() {
                core::System sys(cfg);
                std::unique_ptr<obs::TimelineRecorder> tl;
                if (!tlPrefix.empty()) {
                    tl = std::make_unique<obs::TimelineRecorder>(
                        sys.controller().config().org, cfg.numCores);
                    sys.attachProbe(tl.get());
                }
                const auto m = sys.run(run.warmupQuanta,
                                       run.measureQuanta);
                const std::string cell =
                    ".cell" + std::to_string(idx) + ".json";
                if (!telPrefix.empty()) {
                    sys.telemetry()->writeFile(telPrefix + ".cell"
                                               + std::to_string(idx)
                                               + ".jsonl");
                    if (tl)
                        sys.telemetry()->exportCounters(*tl);
                }
                if (tl)
                    tl->writeFile(tlPrefix + cell);
                if (!sjPrefix.empty()) {
                    std::ofstream f(sjPrefix + cell);
                    if (!f)
                        fatal("cannot write ", sjPrefix + cell);
                    sys.writeStatsJson(f, m);
                }
                return m;
            });
        }

        core::CellSpec cell;
        cell.cfg = std::move(cfg);
        cell.opts = runOptions();
        cells_.push_back(std::move(cell));
        return cells_.size() - 1;
    }

    /** Queue a fully custom cell (must be self-contained). */
    std::size_t
    add(std::function<core::Metrics()> custom)
    {
        core::CellSpec cell;
        cell.custom = std::move(custom);
        cells_.push_back(std::move(cell));
        return cells_.size() - 1;
    }

    /** The bench's standard warm-up/measure lengths. */
    core::RunOptions
    runOptions() const
    {
        core::RunOptions run;
        run.warmupQuanta = opts_.warmupQuanta;
        run.measureQuanta = opts_.measureQuanta;
        return run;
    }

    /** Run every queued cell across --jobs workers. */
    void
    run()
    {
        results_ =
            core::ParallelRunner(opts_.jobs).runCells(cells_);
        ran_ = true;
        if (opts_.validate)
            reportValidation();
    }

    const core::Metrics &
    operator[](std::size_t i) const
    {
        REFSCHED_ASSERT(ran_, "GridRunner::run() not called");
        return results_[i];
    }

    std::size_t size() const { return cells_.size(); }

  private:
    /** Aggregate checker results; exits non-zero on any violation. */
    void
    reportValidation() const
    {
        if (!validate::kValidateCompiledIn) {
            std::cerr << "--validate requested but this build has "
                         "REFSCHED_VALIDATE=0; checkers were inert\n";
            return;
        }
        std::uint64_t violations = 0;
        std::string first;
        for (const auto &m : results_) {
            violations += m.validationViolations;
            if (first.empty() && !m.firstViolation.empty())
                first = m.firstViolation;
        }
        if (violations == 0) {
            std::cerr << "validation: clean (" << results_.size()
                      << " cells)\n";
            return;
        }
        std::cerr << "validation: " << violations
                  << " violation(s); first: " << first << "\n";
        std::exit(1);
    }

    BenchOptions opts_;
    std::vector<core::CellSpec> cells_;
    std::vector<core::Metrics> results_;
    bool ran_ = false;
};

/**
 * Emit @p table to stdout (aligned or CSV per @p opts) and, when
 * --json is active, record it for the archive written at exit.
 */
inline void
emit(const BenchOptions &opts, const core::Table &table,
     const std::string &label = "")
{
    if (opts.csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);

    if (!opts.jsonPath.empty()) {
        auto &archive = detail::jsonArchive();
        const std::string name = !label.empty()
            ? label
            : "table" + std::to_string(archive.tables.size());
        archive.tables.emplace_back(name, table);
    }
}

/**
 * Geometric mean of a vector of ratios, accumulated in log space so
 * long products of small ratios cannot underflow (a 10-cell product
 * of 1e-40s is zero in double arithmetic, but fine as a log sum).
 * Non-positive inputs have no geometric mean; they yield 0.0.
 */
inline double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double logSum = 0.0;
    for (double x : xs) {
        if (!(x > 0.0))
            return 0.0;
        logSum += std::log(x);
    }
    return std::exp(logSum / static_cast<double>(xs.size()));
}

} // namespace refsched::bench

#endif // REFSCHED_BENCH_BENCH_UTIL_HH
