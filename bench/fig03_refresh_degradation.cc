/**
 * @file
 * Figure 3: performance degradation due to refresh, as a function of
 * DRAM chip density, for all-bank and per-bank refresh, at 64 ms and
 * 32 ms retention.
 *
 * Paper shape (64 ms): all-bank degradation grows from 5.4% (8 Gb)
 * to 17.2% (32 Gb); per-bank from 0.24% to 9.8%.  At 32 ms: up to
 * 34.8% / 20.3%.
 */

#include "bench_util.hh"

using namespace refsched;
using namespace refsched::bench;
using core::Policy;

int
main(int argc, char **argv)
{
    const auto opts = parseArgs(argc, argv);
    const auto workloads = workloadNames(opts);
    const std::vector<dram::DensityGb> densities{
        dram::DensityGb::d8, dram::DensityGb::d16,
        dram::DensityGb::d24, dram::DensityGb::d32};
    const std::vector<Tick> retentions{milliseconds(64.0),
                                       milliseconds(32.0)};

    std::cout << "Figure 3: IPC degradation vs no-refresh "
              << "(average over " << workloads.size()
              << " workloads)\n\n";

    GridRunner grid(opts);
    struct Cell
    {
        std::size_t nr, ab, pb;
    };
    // cells[density][retention][workload]
    std::vector<std::vector<std::vector<Cell>>> cells(
        densities.size(),
        std::vector<std::vector<Cell>>(retentions.size()));
    for (std::size_t d = 0; d < densities.size(); ++d) {
        for (std::size_t t = 0; t < retentions.size(); ++t) {
            for (const auto &wl : workloads) {
                cells[d][t].push_back(
                    {grid.add(wl, Policy::NoRefresh, densities[d],
                              retentions[t]),
                     grid.add(wl, Policy::AllBank, densities[d],
                              retentions[t]),
                     grid.add(wl, Policy::PerBank, densities[d],
                              retentions[t])});
            }
        }
    }
    grid.run();

    core::Table table({"density", "all-bank 64ms", "per-bank 64ms",
                       "all-bank 32ms", "per-bank 32ms"});

    for (std::size_t d = 0; d < densities.size(); ++d) {
        std::vector<std::string> row{dram::toString(densities[d])};
        for (std::size_t t = 0; t < retentions.size(); ++t) {
            std::vector<double> abDeg, pbDeg;
            for (std::size_t w = 0; w < workloads.size(); ++w) {
                const auto &nr = grid[cells[d][t][w].nr];
                const auto &ab = grid[cells[d][t][w].ab];
                const auto &pb = grid[cells[d][t][w].pb];
                abDeg.push_back(ab.harmonicMeanIpc
                                / nr.harmonicMeanIpc);
                pbDeg.push_back(pb.harmonicMeanIpc
                                / nr.harmonicMeanIpc);
            }
            row.push_back(
                core::fmt((1.0 - geomean(abDeg)) * 100.0, 1) + "%");
            row.push_back(
                core::fmt((1.0 - geomean(pbDeg)) * 100.0, 1) + "%");
        }
        // Loop order above appends ab64, pb64, ab32, pb32.
        table.addRow(row);
    }

    emit(opts, table, "fig03");
    std::cout << "\nPaper reference (64ms): all-bank 5.4%->17.2%, "
                 "per-bank 0.24%->9.8% from 8Gb to 32Gb;\n"
                 "(32ms): up to 34.8% / 20.3% at 32Gb.\n";
    return 0;
}
