/**
 * @file
 * Figure 3: performance degradation due to refresh, as a function of
 * DRAM chip density, for all-bank and per-bank refresh, at 64 ms and
 * 32 ms retention.
 *
 * Paper shape (64 ms): all-bank degradation grows from 5.4% (8 Gb)
 * to 17.2% (32 Gb); per-bank from 0.24% to 9.8%.  At 32 ms: up to
 * 34.8% / 20.3%.
 */

#include "bench_util.hh"

using namespace refsched;
using namespace refsched::bench;
using core::Policy;

int
main(int argc, char **argv)
{
    const auto opts = parseArgs(argc, argv);
    const auto workloads = workloadNames(opts);

    std::cout << "Figure 3: IPC degradation vs no-refresh "
              << "(average over " << workloads.size()
              << " workloads)\n\n";

    core::Table table({"density", "all-bank 64ms", "per-bank 64ms",
                       "all-bank 32ms", "per-bank 32ms"});

    for (auto density :
         {dram::DensityGb::d8, dram::DensityGb::d16,
          dram::DensityGb::d24, dram::DensityGb::d32}) {
        std::vector<std::string> row{dram::toString(density)};
        for (const Tick tREFW :
             {milliseconds(64.0), milliseconds(32.0)}) {
            std::vector<double> abDeg, pbDeg;
            for (const auto &wl : workloads) {
                const auto nr = runCell(opts, wl, Policy::NoRefresh,
                                        density, tREFW);
                const auto ab = runCell(opts, wl, Policy::AllBank,
                                        density, tREFW);
                const auto pb = runCell(opts, wl, Policy::PerBank,
                                        density, tREFW);
                abDeg.push_back(ab.harmonicMeanIpc
                                / nr.harmonicMeanIpc);
                pbDeg.push_back(pb.harmonicMeanIpc
                                / nr.harmonicMeanIpc);
            }
            row.push_back(
                core::fmt((1.0 - geomean(abDeg)) * 100.0, 1) + "%");
            row.push_back(
                core::fmt((1.0 - geomean(pbDeg)) * 100.0, 1) + "%");
        }
        // Reorder: the loop above appended ab64, pb64, ab32, pb32.
        table.addRow(row);
    }

    emit(opts, table);
    std::cout << "\nPaper reference (64ms): all-bank 5.4%->17.2%, "
                 "per-bank 0.24%->9.8% from 8Gb to 32Gb;\n"
                 "(32ms): up to 34.8% / 20.3% at 32Gb.\n";
    return 0;
}
