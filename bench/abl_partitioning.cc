/**
 * @file
 * Ablation: soft vs hard memory partitioning under the co-design
 * (paper section 5.2.1's design argument).
 *
 * Expectation: soft partitioning matches or beats hard partitioning
 * on IPC, and produces fewer fall-back (out-of-partition)
 * allocations for large-footprint mixes, because groups of tasks
 * share their bank subset's capacity.
 */

#include "bench_util.hh"

using namespace refsched;
using namespace refsched::bench;
using core::Policy;

namespace
{

core::SystemConfig
modeConfig(const BenchOptions &opts, const std::string &wl,
           core::Partitioning mode, bool prefetchSequential = false)
{
    auto cfg = core::makeConfig(wl, Policy::CoDesign,
                                dram::DensityGb::d32,
                                milliseconds(64.0), 2, 4,
                                opts.timeScale);
    cfg.partitioning = mode;
    cfg.coreParams.prefetchSequential = prefetchSequential;
    return cfg;
}

std::uint64_t
fallbacks(const core::Metrics &m)
{
    std::uint64_t total = 0;
    for (const auto &t : m.tasks)
        total += t.fallbackAllocs;
    return total;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = parseArgs(argc, argv);
    const auto workloads = workloadNames(opts);

    std::cout << "Ablation: soft vs hard partitioning under the "
                 "co-design (32Gb)\n\n";

    GridRunner grid(opts);
    struct Cell
    {
        // soft doubles as the "blocking" cell of the secondary
        // ablation (identical configuration, deterministic result).
        std::size_t soft, hard, prefetch;
    };
    std::vector<Cell> cells;
    for (const auto &wl : workloads) {
        cells.push_back(
            {grid.add(modeConfig(opts, wl, core::Partitioning::Soft)),
             grid.add(modeConfig(opts, wl, core::Partitioning::Hard)),
             grid.add(modeConfig(opts, wl, core::Partitioning::Soft,
                                 true))});
    }
    grid.run();

    core::Table table({"workload", "soft IPC", "hard IPC",
                       "hard vs soft", "soft fallback pages",
                       "hard fallback pages"});
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        const auto &soft = grid[cells[w].soft];
        const auto &hard = grid[cells[w].hard];
        table.addRow({workloads[w], core::fmt(soft.harmonicMeanIpc),
                      core::fmt(hard.harmonicMeanIpc),
                      core::pctImprovement(hard.speedupOver(soft)),
                      std::to_string(fallbacks(soft)),
                      std::to_string(fallbacks(hard))});
    }
    emit(opts, table, "abl_partitioning");

    std::cout << "\nSecondary ablation: prefetch-covered sequential "
                 "streams (bandwidth-bound core\nmodel) under the "
                 "co-design\n\n";
    core::Table table2(
        {"workload", "blocking IPC", "prefetch-covered IPC"});
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        table2.addRow(
            {workloads[w],
             core::fmt(grid[cells[w].soft].harmonicMeanIpc),
             core::fmt(grid[cells[w].prefetch].harmonicMeanIpc)});
    }
    emit(opts, table2, "abl_prefetch");
    return 0;
}
