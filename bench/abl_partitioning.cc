/**
 * @file
 * Ablation: soft vs hard memory partitioning under the co-design
 * (paper section 5.2.1's design argument).
 *
 * Expectation: soft partitioning matches or beats hard partitioning
 * on IPC, and produces fewer fall-back (out-of-partition)
 * allocations for large-footprint mixes, because groups of tasks
 * share their bank subset's capacity.
 */

#include "bench_util.hh"

using namespace refsched;
using namespace refsched::bench;
using core::Policy;

namespace
{

core::Metrics
runMode(const BenchOptions &opts, const std::string &wl,
        core::Partitioning mode, bool prefetchSequential = false)
{
    auto cfg = core::makeConfig(wl, Policy::CoDesign,
                                dram::DensityGb::d32,
                                milliseconds(64.0), 2, 4,
                                opts.timeScale);
    cfg.partitioning = mode;
    cfg.coreParams.prefetchSequential = prefetchSequential;
    core::RunOptions run;
    run.warmupQuanta = opts.warmupQuanta;
    run.measureQuanta = opts.measureQuanta;
    return core::runOnce(cfg, run);
}

std::uint64_t
fallbacks(const core::Metrics &m)
{
    std::uint64_t total = 0;
    for (const auto &t : m.tasks)
        total += t.fallbackAllocs;
    return total;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = parseArgs(argc, argv);
    const auto workloads = workloadNames(opts);

    std::cout << "Ablation: soft vs hard partitioning under the "
                 "co-design (32Gb)\n\n";

    core::Table table({"workload", "soft IPC", "hard IPC",
                       "hard vs soft", "soft fallback pages",
                       "hard fallback pages"});
    for (const auto &wl : workloads) {
        const auto soft = runMode(opts, wl, core::Partitioning::Soft);
        const auto hard = runMode(opts, wl, core::Partitioning::Hard);
        table.addRow({wl, core::fmt(soft.harmonicMeanIpc),
                      core::fmt(hard.harmonicMeanIpc),
                      core::pctImprovement(hard.speedupOver(soft)),
                      std::to_string(fallbacks(soft)),
                      std::to_string(fallbacks(hard))});
    }
    emit(opts, table);

    std::cout << "\nSecondary ablation: prefetch-covered sequential "
                 "streams (bandwidth-bound core\nmodel) under the "
                 "co-design\n\n";
    core::Table table2(
        {"workload", "blocking IPC", "prefetch-covered IPC"});
    for (const auto &wl : workloads) {
        const auto blocking =
            runMode(opts, wl, core::Partitioning::Soft, false);
        const auto prefetch =
            runMode(opts, wl, core::Partitioning::Soft, true);
        table2.addRow({wl, core::fmt(blocking.harmonicMeanIpc),
                       core::fmt(prefetch.harmonicMeanIpc)});
    }
    emit(opts, table2);
    return 0;
}
