/**
 * @file
 * Open-loop serving latency sweep: offered load vs request tail
 * latency (p50/p95/p99/p999), split clean vs refresh-blocked, for
 * the refresh policies on 1/4/8-channel configurations.
 *
 * This is the paper's story told through a serving lens: closed-loop
 * IPC hides refresh stalls in throughput averages, but an open-loop
 * arrival process exposes them as tail amplification -- the latency
 * hockey stick bends earlier and the blocked-tail gap widens as
 * offered load approaches the refresh-diminished service capacity.
 * Co-design keeps scheduled tasks off refreshing banks, so its
 * blocked tail stays near the clean one at mid load.
 *
 * Row per (channels, policy, load); latencies in nanoseconds.
 */

#include "bench_util.hh"

#include "workload/serving.hh"

using namespace refsched;
using namespace refsched::bench;
using core::Policy;

namespace
{

struct CellOut
{
    std::uint64_t arrivals = 0;
    std::uint64_t drops = 0;
    std::uint64_t completed = 0;
    std::uint64_t blocked = 0;
    // Quantiles in ticks (ps).
    double all50 = 0, all95 = 0, all99 = 0, all999 = 0;
    double clean50 = 0, clean99 = 0, clean999 = 0;
    double blk50 = 0, blk99 = 0, blk999 = 0;
    // Per-channel read-queue depth over the measured interval:
    // time-weighted mean (occupancy integral / measured ticks) and
    // peak.  Queue pressure is where the hockey stick actually
    // forms, so the tables carry it next to the tails.
    std::vector<double> qMean;
    std::vector<std::uint64_t> qPeak;
};

std::string
ns(double ticks)
{
    return core::fmt(ticks / 1000.0, 1);
}

/** Per-channel values joined "a/b/..." (one channel: just "a"). */
std::string
joinPerChannel(const std::vector<std::string> &vals)
{
    std::string out;
    for (std::size_t i = 0; i < vals.size(); ++i)
        out += (i ? "/" : "") + vals[i];
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = parseArgs(argc, argv);
    const auto density = dram::DensityGb::d32;

    // Offered loads in requests/us, spanning the knee.  The exact
    // knee position depends on --scale; this range covers it for the
    // default bench scale on WL-5.
    const std::vector<double> loads = {0.05, 0.1, 0.2, 0.4,
                                       0.8,  1.6, 3.2};
    const std::vector<Policy> policies = {
        Policy::CoDesign, Policy::AllBank, Policy::PerBank};
    std::vector<int> channelCfgs = {1, 4};
    if (opts.full)
        channelCfgs.push_back(8);

    std::cout << "Serving sweep: open-loop offered load vs request "
                 "latency quantiles (ns),\nclean vs refresh-blocked, "
                 "WL-5 @ 32Gb\n\n";

    GridRunner grid(opts);
    struct CellRef
    {
        int channels;
        Policy policy;
        double load;
        std::size_t idx;
    };
    std::vector<CellRef> refs;
    // Results are filled in by the cell thunks; sized up front so
    // worker threads write disjoint slots.
    auto outs = std::make_shared<std::vector<CellOut>>(
        channelCfgs.size() * policies.size() * loads.size());

    const auto run = grid.runOptions();
    std::size_t slot = 0;
    for (int channels : channelCfgs) {
        for (Policy policy : policies) {
            for (double load : loads) {
                core::SystemConfig cfg = core::makeConfig(
                    "WL-5", policy, density, milliseconds(64.0),
                    /*numCores=*/2, /*tasksPerCore=*/4,
                    opts.timeScale);
                cfg.channels = channels;
                cfg.serving = workload::ServingConfig::parse(
                    "arrival=mmpp,load=" + std::to_string(load)
                    + ",pool=8,queue=64,lines=4");
                CellOut *out = &(*outs)[slot];
                const std::size_t idx =
                    grid.add([cfg, run, out, outs] {
                        core::System sys(cfg);
                        const auto m = sys.run(run.warmupQuanta,
                                               run.measureQuanta);
                        const auto *inj = sys.servingInjector();
                        const auto &all = inj->latency();
                        const auto &cl = inj->latencyClean();
                        const auto &bl = inj->latencyBlocked();
                        out->arrivals = inj->arrivals();
                        out->drops = inj->dropped();
                        out->completed = inj->completed();
                        out->blocked = bl.samples();
                        out->all50 = all.quantile(0.50);
                        out->all95 = all.quantile(0.95);
                        out->all99 = all.quantile(0.99);
                        out->all999 = all.quantile(0.999);
                        out->clean50 = cl.quantile(0.50);
                        out->clean99 = cl.quantile(0.99);
                        out->clean999 = cl.quantile(0.999);
                        out->blk50 = bl.quantile(0.50);
                        out->blk99 = bl.quantile(0.99);
                        out->blk999 = bl.quantile(0.999);
                        auto &mc = sys.controller();
                        for (int ch = 0; ch < cfg.channels; ++ch) {
                            out->qMean.push_back(
                                mc.readQueueOccupancyIntegral(ch)
                                / static_cast<double>(
                                    m.measuredTicks));
                            out->qPeak.push_back(
                                mc.readQueuePeakDepth(ch));
                        }
                        return m;
                    });
                refs.push_back({channels, policy, load, idx});
                ++slot;
            }
        }
    }
    grid.run();

    for (int channels : channelCfgs) {
        core::Table table(
            {"policy", "load r/us", "arrivals", "drop%", "blocked%",
             "p50", "p95", "p99", "p999", "clean p99", "clean p999",
             "blocked p99", "blocked p999", "rdQ mean", "rdQ peak"});
        for (std::size_t i = 0; i < refs.size(); ++i) {
            if (refs[i].channels != channels)
                continue;
            const CellOut &o = (*outs)[i];
            const double dropPct = o.arrivals
                ? 100.0 * static_cast<double>(o.drops)
                    / static_cast<double>(o.arrivals)
                : 0.0;
            const double blkPct = o.completed
                ? 100.0 * static_cast<double>(o.blocked)
                    / static_cast<double>(o.completed)
                : 0.0;
            std::vector<std::string> qMeans, qPeaks;
            for (std::size_t ch = 0; ch < o.qMean.size(); ++ch) {
                qMeans.push_back(core::fmt(o.qMean[ch], 2));
                qPeaks.push_back(std::to_string(o.qPeak[ch]));
            }
            table.addRow({core::toString(refs[i].policy),
                          core::fmt(refs[i].load, 2),
                          std::to_string(o.arrivals),
                          core::fmt(dropPct, 1),
                          core::fmt(blkPct, 1), ns(o.all50),
                          ns(o.all95), ns(o.all99), ns(o.all999),
                          ns(o.clean99), ns(o.clean999),
                          ns(o.blk99), ns(o.blk999),
                          joinPerChannel(qMeans),
                          joinPerChannel(qPeaks)});
        }
        std::cout << "channels=" << channels << "\n";
        emit(opts, table,
             "serving_ch" + std::to_string(channels));
        std::cout << "\n";
    }

    std::cout << "Expected shape: latency flat at low load, hockey-"
                 "stick once offered load\napproaches refresh-"
                 "diminished capacity; co-design's blocked tail "
                 "stays closest\nto its clean tail at mid load.\n";
    return 0;
}
