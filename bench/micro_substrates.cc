/**
 * @file
 * google-benchmark microbenchmarks for the hot substrate operations:
 * the red-black tree, buddy allocator, event queue, cache, trace
 * generation, and memory-controller throughput.  These guard against
 * performance regressions in the simulator itself.
 */

#include <benchmark/benchmark.h>

#include "cache/cache.hh"
#include "dram/refresh_scheduler.hh"
#include "memctrl/memory_controller.hh"
#include "os/buddy_allocator.hh"
#include "os/cfs_runqueue.hh"
#include "os/rbtree.hh"
#include "os/scheduler.hh"
#include "os/task.hh"
#include "simcore/event_queue.hh"
#include "simcore/rng.hh"
#include "workload/trace_generator.hh"

using namespace refsched;

namespace
{

void
BM_RbTreeInsertErase(benchmark::State &state)
{
    os::RbTree<std::uint64_t, int> tree;
    Rng rng(1);
    std::vector<decltype(tree)::Node *> nodes;
    for (std::int64_t i = 0; i < state.range(0); ++i)
        nodes.push_back(tree.insert(rng.next(), 0));
    std::size_t i = 0;
    for (auto _ : state) {
        tree.erase(nodes[i]);
        nodes[i] = tree.insert(rng.next(), 0);
        i = (i + 1) % nodes.size();
    }
}
BENCHMARK(BM_RbTreeInsertErase)->Arg(16)->Arg(1024);

void
BM_RbTreeLeftmost(benchmark::State &state)
{
    os::RbTree<std::uint64_t, int> tree;
    Rng rng(1);
    for (int i = 0; i < 1024; ++i)
        tree.insert(rng.next(), 0);
    for (auto _ : state)
        benchmark::DoNotOptimize(tree.leftmost());
}
BENCHMARK(BM_RbTreeLeftmost);

void
BM_BuddyAllocFreePage(benchmark::State &state)
{
    const auto dev = dram::makeDdr3_1600(dram::DensityGb::d32,
                                         milliseconds(64.0), 64);
    dram::AddressMapping mapping(dev.org);
    os::BuddyAllocator buddy(mapping);
    os::Task task(1, "bench", mapping.totalBanks());
    for (auto _ : state) {
        auto pfn = buddy.allocPage(task);
        buddy.freePage(*pfn);
    }
}
BENCHMARK(BM_BuddyAllocFreePage);

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    EventQueue eq;
    for (auto _ : state) {
        eq.schedule(eq.now() + 10, [] {});
        eq.runOne();
    }
}
BENCHMARK(BM_EventQueueScheduleRun);

void
BM_EventQueueScheduleCancel(benchmark::State &state)
{
    // Schedule/cancel churn against a standing population of pending
    // events: exercises the O(1) generation-counter cancel and the
    // slab free-list recycle path (steady state allocates nothing).
    EventQueue eq;
    std::vector<EventHandle> standing;
    for (std::int64_t i = 0; i < state.range(0); ++i)
        standing.push_back(eq.schedule(1'000'000 + i, [] {}));
    for (auto _ : state) {
        auto h = eq.schedule(eq.now() + 10, [] {});
        h.cancel();
    }
}
BENCHMARK(BM_EventQueueScheduleCancel)->Arg(0)->Arg(1024);

void
BM_CacheAccess(benchmark::State &state)
{
    cache::Cache c(cache::CacheParams{2 * kMiB, 16, 64, 20});
    Rng rng(2);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            c.access(rng.below(8 * kMiB) & ~63ULL, false));
    }
}
BENCHMARK(BM_CacheAccess);

void
BM_TraceGeneration(benchmark::State &state)
{
    const auto &prof = workload::profileByName("mcf");
    workload::SyntheticTraceGenerator gen(prof, 7, 32 * kMiB);
    for (auto _ : state)
        benchmark::DoNotOptimize(gen.next());
}
BENCHMARK(BM_TraceGeneration);

void
BM_RefreshSchedulerPop(benchmark::State &state)
{
    const auto dev = dram::makeDdr3_1600(dram::DensityGb::d32,
                                         milliseconds(64.0), 1);
    dram::SequentialPerBank sched(dev);
    class IdleView : public dram::McRefreshView
    {
        int queuedToBank(int, int, int) const override { return 0; }
        double channelUtilization(int) const override { return 0.0; }
    } view;
    for (auto _ : state)
        benchmark::DoNotOptimize(sched.pop(0, view));
}
BENCHMARK(BM_RefreshSchedulerPop);

/** Completion receiver counting read completions. */
struct CompletionCounter : Callee
{
    std::uint64_t count = 0;
    void
    fire(Tick, std::uint64_t, std::uint64_t) override
    {
        ++count;
    }
};

void
BM_ControllerRandomReads(benchmark::State &state)
{
    // Steady-state open-loop random reads through the controller;
    // reports simulated reads per wall second.
    const auto dev = dram::makeDdr3_1600(dram::DensityGb::d32,
                                         milliseconds(64.0), 64);
    EventQueue eq;
    memctrl::MemoryController mc(
        eq, dev,
        dram::makeRefreshScheduler(
            dram::RefreshPolicy::PerBankRoundRobin, dev));
    Rng rng(3);
    CompletionCounter completed;
    for (auto _ : state) {
        if (mc.readQueueSize(0) < 32) {
            memctrl::Request r;
            r.paddr = rng.below(dev.org.totalBytes() / 64) * 64;
            r.type = memctrl::Request::Type::Read;
            r.completion = &completed;
            mc.enqueue(std::move(r));
        }
        eq.runUntil(eq.now() + dev.timings.tCK * 4);
    }
    state.counters["readsCompleted"] =
        static_cast<double>(completed.count);
}
BENCHMARK(BM_ControllerRandomReads);

void
BM_ControllerSaturatedPick(benchmark::State &state)
{
    // FR-FCFS pick cost with the read queue held at capacity: every
    // controller tick scans for a row hit / ACT / PRE candidate over
    // a full queue, so the per-bank request lists dominate.
    const auto dev = dram::makeDdr3_1600(dram::DensityGb::d32,
                                         milliseconds(64.0), 64);
    EventQueue eq;
    memctrl::MemoryController mc(
        eq, dev,
        dram::makeRefreshScheduler(
            dram::RefreshPolicy::PerBankRoundRobin, dev));
    Rng rng(4);
    CompletionCounter completed;
    for (auto _ : state) {
        while (mc.readQueueSize(0) < 64) {
            memctrl::Request r;
            r.paddr = rng.below(dev.org.totalBytes() / 64) * 64;
            r.type = memctrl::Request::Type::Read;
            r.completion = &completed;
            if (!mc.enqueue(std::move(r)))
                break;
        }
        eq.runUntil(eq.now() + dev.timings.tCK * 4);
    }
    state.counters["readsCompleted"] =
        static_cast<double>(completed.count);
}
BENCHMARK(BM_ControllerSaturatedPick);

void
BM_SchedulerAlg3Pick(benchmark::State &state)
{
    // Algorithm 3 pick cost: mask-intersection cleanliness test over
    // a populated runqueue, as a function of the fairness threshold
    // eta (arg).  pickNextTask is side-effect free -- the quantum
    // handler dequeues -- so the same queue is re-picked each
    // iteration.
    constexpr int kBanks = 64;
    EventQueue eq;
    os::SchedulerParams params;
    params.refreshAware = true;
    params.etaThresh = static_cast<int>(state.range(0));
    os::Scheduler sched(eq, params);

    class IdleCpu : public os::CpuContext
    {
        void setTask(os::Task *, Tick) override {}
    } cpu;
    sched.attachCpus({&cpu});

    Rng rng(5);
    std::vector<std::unique_ptr<os::Task>> tasks;
    for (int i = 0; i < 16; ++i) {
        tasks.push_back(std::make_unique<os::Task>(
            static_cast<Pid>(i + 1), "bench", kBanks));
        // Each task resident in 8 random banks: most picks must walk
        // a few dirty candidates before finding a clean one.
        for (int j = 0; j < 8; ++j)
            tasks.back()->addResidentPage(
                static_cast<int>(rng.below(kBanks)));
        sched.addTask(tasks.back().get(), 0);
    }

    std::vector<int> refreshBanks(2);
    std::uint64_t n = 0;
    for (auto _ : state) {
        refreshBanks[0] = static_cast<int>(n % kBanks);
        refreshBanks[1] = static_cast<int>((n + kBanks / 2) % kBanks);
        ++n;
        benchmark::DoNotOptimize(sched.pickNextTask(0, refreshBanks));
    }
}
BENCHMARK(BM_SchedulerAlg3Pick)->Arg(1)->Arg(3)->Arg(8);

void
BM_ControllerGateBatchReeval(benchmark::State &state)
{
    // Batched timing-gate re-evaluation: demand reads spread over
    // every bank while dense per-bank refresh constantly freezes and
    // thaws banks, so each service window re-derives gate deadlines
    // for whole banks at a time rather than per request.
    const auto dev = dram::makeDdr3_1600(dram::DensityGb::d32,
                                         milliseconds(64.0), 64);
    EventQueue eq;
    memctrl::MemoryController mc(
        eq, dev,
        dram::makeRefreshScheduler(
            dram::RefreshPolicy::SequentialPerBank, dev));
    Rng rng(6);
    CompletionCounter completed;
    const int banks = dev.org.banksTotal();
    int nextBank = 0;
    for (auto _ : state) {
        while (mc.readQueueSize(0) < 64) {
            dram::DramCoord c;
            c.rank = nextBank / dev.org.banksPerRank;
            c.bank = nextBank % dev.org.banksPerRank;
            nextBank = (nextBank + 1) % banks;
            c.row = rng.below(4);
            c.column = rng.below(8);
            memctrl::Request r;
            r.paddr = mc.mapping().compose(c);
            r.type = memctrl::Request::Type::Read;
            r.completion = &completed;
            if (!mc.enqueue(std::move(r)))
                break;
        }
        // A window long enough to cross refresh starts/ends, where
        // the controller re-gates every queued request per bank.
        eq.runUntil(eq.now() + dev.timings.tRFCpb);
    }
    state.counters["readsCompleted"] =
        static_cast<double>(completed.count);
}
BENCHMARK(BM_ControllerGateBatchReeval);

void
BM_CfsEnqueueDequeue(benchmark::State &state)
{
    os::CfsRunQueue rq;
    std::vector<std::unique_ptr<os::Task>> tasks;
    for (int i = 0; i < 8; ++i) {
        tasks.push_back(std::make_unique<os::Task>(
            static_cast<Pid>(i + 1), "t", 16));
        rq.enqueue(tasks.back().get());
    }
    Tick v = 0;
    for (auto _ : state) {
        os::Task *t = rq.first();
        rq.dequeue(t);
        t->vruntime = ++v;
        rq.enqueue(t);
    }
}
BENCHMARK(BM_CfsEnqueueDequeue);

} // namespace

BENCHMARK_MAIN();
