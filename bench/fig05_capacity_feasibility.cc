/**
 * @file
 * Figure 5: fraction of each benchmark's footprint that fits in a
 * single DRAM bank, per chip density.
 *
 * Methodology mirrors the paper: the buddy allocator is asked to put
 * as much of the task's memory as possible on bank 0 (its
 * possible_banks_vector permits only bank 0); once bank 0 is
 * exhausted, the fall-back allocates elsewhere.  The reported value
 * is pages-on-bank-0 / footprint-pages.
 *
 * This experiment is untimed, so it always runs at timeScale 1: real
 * footprints against real bank capacities (2 GB/bank at 32 Gb).
 * Each (benchmark, density) cell is independent, so the grid fans
 * out across --jobs workers like the timed benches.
 */

#include "bench_util.hh"
#include "dram/address_mapping.hh"
#include "os/buddy_allocator.hh"
#include "os/virtual_memory.hh"
#include "workload/profile.hh"

using namespace refsched;
using namespace refsched::bench;

namespace
{

double
fractionOnOneBank(dram::DensityGb density,
                  const workload::BenchmarkProfile &profile)
{
    const auto dev = dram::makeDdr3_1600(density, milliseconds(64.0), 1);
    dram::AddressMapping mapping(dev.org);
    os::BuddyAllocator buddy(mapping);
    os::VirtualMemory vm(mapping, buddy);

    os::Task task(1, profile.name, mapping.totalBanks());
    std::fill(task.possibleBanksVector.begin(),
              task.possibleBanksVector.end(), false);
    task.allowBank(0);

    const auto pageBytes = mapping.pageBytes();
    const auto pages = divCeil(profile.footprintBytes, pageBytes);
    for (std::uint64_t p = 0; p < pages; ++p)
        vm.translate(task, p * pageBytes);

    return static_cast<double>(task.residentPagesPerBank[0])
        / static_cast<double>(pages);
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = parseArgs(argc, argv);
    const std::vector<dram::DensityGb> densities{
        dram::DensityGb::d8, dram::DensityGb::d16,
        dram::DensityGb::d24, dram::DensityGb::d32};
    const auto names = workload::builtinProfileNames();

    std::cout << "Figure 5: fraction of footprint placeable on a "
                 "single bank (timeScale 1,\nreal capacities)\n\n";

    // Fan the (benchmark x density) grid out over the worker pool.
    std::vector<double> fracs(names.size() * densities.size());
    core::ParallelRunner(opts.jobs).runIndexed(
        fracs.size(), [&](std::size_t i) {
            const auto &prof =
                workload::profileByName(names[i / densities.size()]);
            fracs[i] = fractionOnOneBank(
                densities[i % densities.size()], prof);
        });

    core::Table table({"benchmark", "footprint", "8Gb", "16Gb", "24Gb",
                       "32Gb"});

    std::vector<double> avg(densities.size(), 0.0);
    for (std::size_t n = 0; n < names.size(); ++n) {
        const auto &prof = workload::profileByName(names[n]);
        std::vector<std::string> row{
            names[n],
            core::fmt(static_cast<double>(prof.footprintBytes)
                          / static_cast<double>(kMiB),
                      0)
                + " MiB"};
        for (std::size_t d = 0; d < densities.size(); ++d) {
            const double frac = fracs[n * densities.size() + d];
            avg[d] += frac;
            row.push_back(core::fmt(frac * 100.0, 1) + "%");
        }
        table.addRow(row);
    }

    std::vector<std::string> avgRow{"average", ""};
    for (double a : avg) {
        avgRow.push_back(
            core::fmt(a / static_cast<double>(names.size()) * 100.0, 1)
            + "%");
    }
    table.addRow(avgRow);

    emit(opts, table, "fig05");
    std::cout << "\nPaper reference: ~68% average at 8Gb, growing "
                 "with density (Fig. 5).\n";
    return 0;
}
