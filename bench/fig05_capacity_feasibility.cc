/**
 * @file
 * Figure 5: fraction of each benchmark's footprint that fits in a
 * single DRAM bank, per chip density.
 *
 * Methodology mirrors the paper: the buddy allocator is asked to put
 * as much of the task's memory as possible on bank 0 (its
 * possible_banks_vector permits only bank 0); once bank 0 is
 * exhausted, the fall-back allocates elsewhere.  The reported value
 * is pages-on-bank-0 / footprint-pages.
 *
 * This experiment is untimed, so it runs at timeScale 1: real
 * footprints against real bank capacities (2 GB/bank at 32 Gb).
 *
 * Paper shape: on average 68% of the footprint fits one bank at
 * 8 Gb, growing toward 100% with density.
 */

#include <iostream>

#include "core/report.hh"
#include "dram/address_mapping.hh"
#include "os/buddy_allocator.hh"
#include "os/virtual_memory.hh"
#include "workload/profile.hh"

using namespace refsched;

namespace
{

double
fractionOnOneBank(dram::DensityGb density,
                  const workload::BenchmarkProfile &profile)
{
    const auto dev = dram::makeDdr3_1600(density, milliseconds(64.0), 1);
    dram::AddressMapping mapping(dev.org);
    os::BuddyAllocator buddy(mapping);
    os::VirtualMemory vm(mapping, buddy);

    os::Task task(1, profile.name, mapping.totalBanks());
    std::fill(task.possibleBanksVector.begin(),
              task.possibleBanksVector.end(), false);
    task.allowBank(0);

    const auto pageBytes = mapping.pageBytes();
    const auto pages = divCeil(profile.footprintBytes, pageBytes);
    for (std::uint64_t p = 0; p < pages; ++p)
        vm.translate(task, p * pageBytes);

    return static_cast<double>(task.residentPagesPerBank[0])
        / static_cast<double>(pages);
}

} // namespace

int
main(int argc, char **argv)
{
    const bool csv = argc > 1 && std::string(argv[1]) == "--csv";

    std::cout << "Figure 5: fraction of footprint placeable on a "
                 "single bank (timeScale 1,\nreal capacities)\n\n";

    core::Table table({"benchmark", "footprint", "8Gb", "16Gb", "24Gb",
                       "32Gb"});

    std::vector<double> avg(4, 0.0);
    const auto names = workload::builtinProfileNames();
    for (const auto &name : names) {
        const auto &prof = workload::profileByName(name);
        std::vector<std::string> row{
            name,
            core::fmt(static_cast<double>(prof.footprintBytes)
                          / static_cast<double>(kMiB),
                      0)
                + " MiB"};
        int col = 0;
        for (auto density :
             {dram::DensityGb::d8, dram::DensityGb::d16,
              dram::DensityGb::d24, dram::DensityGb::d32}) {
            const double frac = fractionOnOneBank(density, prof);
            avg[static_cast<std::size_t>(col++)] += frac;
            row.push_back(core::fmt(frac * 100.0, 1) + "%");
        }
        table.addRow(row);
    }

    std::vector<std::string> avgRow{"average", ""};
    for (double a : avg) {
        avgRow.push_back(
            core::fmt(a / static_cast<double>(names.size()) * 100.0, 1)
            + "%");
    }
    table.addRow(avgRow);

    if (csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    std::cout << "\nPaper reference: ~68% average at 8Gb, growing "
                 "with density (Fig. 5).\n";
    return 0;
}
