/**
 * @file
 * Figure 14: comparison with previously proposed hardware-only
 * solutions at 32 Gb: out-of-order per-bank refresh (Chang et al.,
 * HPCA'14) and Adaptive Refresh (Mukundan et al., ISCA'13),
 * normalized to all-bank refresh.
 *
 * Paper shape: OOO per-bank +9.5% over all-bank (marginal over plain
 * per-bank); AR only +1.9% (below per-bank); the co-design beats OOO
 * per-bank by ~6.1% and AR by ~14.6%.
 */

#include "bench_util.hh"

using namespace refsched;
using namespace refsched::bench;
using core::Policy;

namespace
{

/** Refresh Pausing (Nair et al.) on top of per-bank refresh. */
core::SystemConfig
pausingConfig(const BenchOptions &opts, const std::string &wl,
              dram::DensityGb density)
{
    auto cfg = core::makeConfig(wl, Policy::PerBank, density,
                                milliseconds(64.0), 2, 4,
                                opts.timeScale);
    cfg.mcParams.refreshPausing = true;
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = parseArgs(argc, argv);
    const auto workloads = workloadNames(opts);
    const auto density = dram::DensityGb::d32;

    std::cout << "Figure 14: prior hardware-only proposals vs the "
                 "co-design (32Gb, vs all-bank)\n\n";

    GridRunner grid(opts);
    struct Cell
    {
        std::size_t ab, pb, ooo, ar, rp, cd;
    };
    std::vector<Cell> cells;
    for (const auto &wl : workloads) {
        cells.push_back(
            {grid.add(wl, Policy::AllBank, density),
             grid.add(wl, Policy::PerBank, density),
             grid.add(wl, Policy::PerBankOoo, density),
             grid.add(wl, Policy::Adaptive, density),
             grid.add(pausingConfig(opts, wl, density)),
             grid.add(wl, Policy::CoDesign, density)});
    }
    grid.run();

    core::Table table({"workload", "per-bank", "OOO per-bank",
                       "adaptive refresh", "refresh pausing",
                       "co-design"});
    std::vector<double> pbAll, oooAll, arAll, rpAll, cdAll;
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        const auto &ab = grid[cells[w].ab];
        const auto &pb = grid[cells[w].pb];
        const auto &ooo = grid[cells[w].ooo];
        const auto &ar = grid[cells[w].ar];
        const auto &rp = grid[cells[w].rp];
        const auto &cd = grid[cells[w].cd];
        pbAll.push_back(pb.speedupOver(ab));
        oooAll.push_back(ooo.speedupOver(ab));
        arAll.push_back(ar.speedupOver(ab));
        rpAll.push_back(rp.speedupOver(ab));
        cdAll.push_back(cd.speedupOver(ab));
        table.addRow({workloads[w],
                      core::pctImprovement(pb.speedupOver(ab)),
                      core::pctImprovement(ooo.speedupOver(ab)),
                      core::pctImprovement(ar.speedupOver(ab)),
                      core::pctImprovement(rp.speedupOver(ab)),
                      core::pctImprovement(cd.speedupOver(ab))});
    }
    table.addRow({"geomean", core::pctImprovement(geomean(pbAll)),
                  core::pctImprovement(geomean(oooAll)),
                  core::pctImprovement(geomean(arAll)),
                  core::pctImprovement(geomean(rpAll)),
                  core::pctImprovement(geomean(cdAll))});

    emit(opts, table, "fig14");
    std::cout << "\nPaper reference: OOO per-bank ~+9.5%, AR ~+1.9% "
                 "over all-bank; co-design\n+6.1% over OOO per-bank "
                 "and +14.6% over AR.\n"
                 "Refresh Pausing (extension baseline, Nair et al. "
                 "HPCA'13) comes closest but\nrequires vendor-"
                 "specific DRAM support (paper section 7); the "
                 "co-design needs\nno DRAM-internal changes and "
                 "still wins.\n";
    return 0;
}
