/**
 * @file
 * Figure 4: IPC when each task is confined to a subset of the 8
 * banks per rank AND all refresh overheads are eliminated,
 * normalized to the all-bank-refresh baseline where tasks span all
 * banks.
 *
 * Paper shape: with high densities (16/24/32 Gb), confining tasks to
 * >= 4 banks per rank still beats the all-bank baseline (the saved
 * tRFC outweighs the lost BLP); at 8 Gb, where refresh is cheap,
 * confinement to few banks loses.
 */

#include "bench_util.hh"

using namespace refsched;
using namespace refsched::bench;
using core::Policy;

namespace
{

core::SystemConfig
confinedConfig(const BenchOptions &opts, const std::string &wl,
               dram::DensityGb density, int banksPerTask)
{
    auto cfg = core::makeConfig(wl, Policy::NoRefresh, density,
                                milliseconds(64.0), 2, 4,
                                opts.timeScale);
    if (banksPerTask < 8) {
        cfg.partitioning = core::Partitioning::Soft;
        cfg.banksPerTaskPerRank = banksPerTask;
    }
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    auto opts = parseArgs(argc, argv);

    // Fig. 4 is about BLP of memory-intensive tasks.
    const std::vector<std::string> workloads =
        opts.full ? workloadNames(opts)
                  : std::vector<std::string>{"WL-1", "WL-5", "WL-8"};
    const std::vector<dram::DensityGb> densities{
        dram::DensityGb::d8, dram::DensityGb::d16,
        dram::DensityGb::d24, dram::DensityGb::d32};
    const std::vector<int> bankCounts{8, 6, 4, 2, 1};

    std::cout << "Figure 4: IPC with k banks/task per rank and all "
                 "refresh eliminated,\nnormalized to the all-bank "
                 "refresh baseline (average over "
              << workloads.size() << " workloads)\n\n";

    GridRunner grid(opts);
    struct Cell
    {
        std::size_t base, confined;
    };
    // cells[density][bankCount][workload]
    std::vector<std::vector<std::vector<Cell>>> cells(
        densities.size(),
        std::vector<std::vector<Cell>>(bankCounts.size()));
    for (std::size_t d = 0; d < densities.size(); ++d) {
        for (std::size_t b = 0; b < bankCounts.size(); ++b) {
            for (const auto &wl : workloads) {
                cells[d][b].push_back(
                    {grid.add(wl, Policy::AllBank, densities[d]),
                     grid.add(confinedConfig(opts, wl, densities[d],
                                             bankCounts[b]))});
            }
        }
    }
    grid.run();

    core::Table table({"density", "8 banks", "6 banks", "4 banks",
                       "2 banks", "1 bank"});

    for (std::size_t d = 0; d < densities.size(); ++d) {
        std::vector<std::string> row{dram::toString(densities[d])};
        for (std::size_t b = 0; b < bankCounts.size(); ++b) {
            std::vector<double> speedups;
            for (std::size_t w = 0; w < workloads.size(); ++w) {
                const auto &base = grid[cells[d][b][w].base];
                const auto &confined = grid[cells[d][b][w].confined];
                speedups.push_back(confined.speedupOver(base));
            }
            row.push_back(core::pctImprovement(geomean(speedups)));
        }
        table.addRow(row);
    }

    emit(opts, table, "fig04");
    std::cout << "\nPaper reference: >= 4 banks/task still wins at "
                 "16/24/32 Gb once tRFC is\neliminated; at 8 Gb "
                 "confinement to few banks degrades (footnote 4).\n";
    return 0;
}
