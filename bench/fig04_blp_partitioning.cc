/**
 * @file
 * Figure 4: IPC when each task is confined to a subset of the 8
 * banks per rank AND all refresh overheads are eliminated,
 * normalized to the all-bank-refresh baseline where tasks span all
 * banks.
 *
 * Paper shape: with high densities (16/24/32 Gb), confining tasks to
 * >= 4 banks per rank still beats the all-bank baseline (the saved
 * tRFC outweighs the lost BLP); at 8 Gb, where refresh is cheap,
 * confinement to few banks loses.
 */

#include "bench_util.hh"

using namespace refsched;
using namespace refsched::bench;
using core::Policy;

namespace
{

core::Metrics
runConfined(const BenchOptions &opts, const std::string &wl,
            dram::DensityGb density, int banksPerTask)
{
    auto cfg = core::makeConfig(wl, Policy::NoRefresh, density,
                                milliseconds(64.0), 2, 4,
                                opts.timeScale);
    if (banksPerTask < 8) {
        cfg.partitioning = core::Partitioning::Soft;
        cfg.banksPerTaskPerRank = banksPerTask;
    }
    core::RunOptions run;
    run.warmupQuanta = opts.warmupQuanta;
    run.measureQuanta = opts.measureQuanta;
    return core::runOnce(cfg, run);
}

} // namespace

int
main(int argc, char **argv)
{
    auto opts = parseArgs(argc, argv);

    // Fig. 4 is about BLP of memory-intensive tasks.
    const std::vector<std::string> workloads =
        opts.full ? workloadNames(opts)
                  : std::vector<std::string>{"WL-1", "WL-5", "WL-8"};

    std::cout << "Figure 4: IPC with k banks/task per rank and all "
                 "refresh eliminated,\nnormalized to the all-bank "
                 "refresh baseline (average over "
              << workloads.size() << " workloads)\n\n";

    core::Table table({"density", "8 banks", "6 banks", "4 banks",
                       "2 banks", "1 bank"});

    for (auto density :
         {dram::DensityGb::d8, dram::DensityGb::d16,
          dram::DensityGb::d24, dram::DensityGb::d32}) {
        std::vector<std::string> row{dram::toString(density)};
        for (int banks : {8, 6, 4, 2, 1}) {
            std::vector<double> speedups;
            for (const auto &wl : workloads) {
                const auto base =
                    runCell(opts, wl, Policy::AllBank, density);
                const auto confined =
                    runConfined(opts, wl, density, banks);
                speedups.push_back(confined.speedupOver(base));
            }
            row.push_back(core::pctImprovement(geomean(speedups)));
        }
        table.addRow(row);
    }

    emit(opts, table);
    std::cout << "\nPaper reference: >= 4 banks/task still wins at "
                 "16/24/32 Gb once tRFC is\neliminated; at 8 Gb "
                 "confinement to few banks degrades (footnote 4).\n";
    return 0;
}
