/**
 * @file
 * Ablation: phased vs steady workload behaviour.
 *
 * Real applications alternate memory-intensive and compute phases.
 * With elastic refresh postponement, refreshes slide into the
 * compute phases, so a phased workload of the same average intensity
 * suffers LESS refresh degradation than a steady one -- and the
 * co-design's remaining advantage shrinks accordingly.  This bench
 * quantifies that with a phased GemsFDTD variant.
 */

#include "bench_util.hh"
#include "core/system.hh"
#include "workload/profile.hh"
#include "workload/trace_generator.hh"

using namespace refsched;
using namespace refsched::bench;
using core::Policy;

namespace
{

/** Run 8 copies of @p prof under @p policy; returns metrics. */
core::Metrics
runProfile(const BenchOptions &opts, const workload::BenchmarkProfile &,
           Policy policy, bool phased)
{
    core::SystemConfig cfg;
    cfg.numCores = 2;
    cfg.tasksPerCore = 4;
    cfg.timeScale = opts.timeScale;
    cfg.applyPolicy(policy);
    cfg.benchmarks.assign(8, "GemsFDTD");
    core::System sys(cfg);

    // Swap in phased sources when asked: same mixture, but the
    // pattern only applies during 30k-instruction memory phases
    // separated by equally long compute phases.
    std::vector<std::unique_ptr<workload::SyntheticTraceGenerator>>
        sources;
    if (phased) {
        auto prof = workload::profileByName("GemsFDTD");
        prof.hotsetBytes =
            std::max<std::uint64_t>(prof.hotsetBytes / cfg.timeScale,
                                    4 * kKiB);
        prof.memPhaseInstrs = 30000;
        prof.computePhaseInstrs = 30000;
        int i = 0;
        for (auto *task : sys.tasks()) {
            sources.push_back(
                std::make_unique<workload::SyntheticTraceGenerator>(
                    prof, 7777 + static_cast<std::uint64_t>(i++),
                    prof.footprintBytes / cfg.timeScale));
            task->source = sources.back().get();
        }
    }
    return sys.run(opts.warmupQuanta, opts.measureQuanta);
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = parseArgs(argc, argv);
    const auto &prof = workload::profileByName("GemsFDTD");

    std::cout << "Ablation: steady vs phased GemsFDTD x8 (32Gb); "
                 "elastic deferral hides refresh\nin compute "
                 "phases\n\n";

    core::Table table({"behaviour", "all-bank deg.", "per-bank deg.",
                       "co-design vs all-bank"});
    for (const bool phased : {false, true}) {
        const auto nr =
            runProfile(opts, prof, Policy::NoRefresh, phased);
        const auto ab =
            runProfile(opts, prof, Policy::AllBank, phased);
        const auto pb =
            runProfile(opts, prof, Policy::PerBank, phased);
        const auto cd =
            runProfile(opts, prof, Policy::CoDesign, phased);
        table.addRow(
            {phased ? "phased" : "steady",
             core::fmt((1.0 - ab.harmonicMeanIpc / nr.harmonicMeanIpc)
                           * 100.0,
                       1)
                 + "%",
             core::fmt((1.0 - pb.harmonicMeanIpc / nr.harmonicMeanIpc)
                           * 100.0,
                       1)
                 + "%",
             core::pctImprovement(cd.speedupOver(ab))});
    }

    emit(opts, table);
    return 0;
}
