/**
 * @file
 * Ablation: phased vs steady workload behaviour.
 *
 * Real applications alternate memory-intensive and compute phases.
 * With elastic refresh postponement, refreshes slide into the
 * compute phases, so a phased workload of the same average intensity
 * suffers LESS refresh degradation than a steady one -- and the
 * co-design's remaining advantage shrinks accordingly.  This bench
 * quantifies that with a phased GemsFDTD variant.
 */

#include "bench_util.hh"
#include "core/system.hh"
#include "workload/profile.hh"
#include "workload/trace_generator.hh"

using namespace refsched;
using namespace refsched::bench;
using core::Policy;

namespace
{

/** Run 8 copies of GemsFDTD under @p policy; returns metrics. */
core::Metrics
runProfile(const BenchOptions &opts, Policy policy, bool phased)
{
    core::SystemConfig cfg;
    cfg.numCores = 2;
    cfg.tasksPerCore = 4;
    cfg.timeScale = opts.timeScale;
    cfg.validate = opts.validate;
    cfg.applyPolicy(policy);
    cfg.benchmarks.assign(8, "GemsFDTD");
    core::System sys(cfg);

    // Swap in phased sources when asked: same mixture, but the
    // pattern only applies during 30k-instruction memory phases
    // separated by equally long compute phases.
    std::vector<std::unique_ptr<workload::SyntheticTraceGenerator>>
        sources;
    if (phased) {
        auto prof = workload::profileByName("GemsFDTD");
        prof.hotsetBytes =
            std::max<std::uint64_t>(prof.hotsetBytes / cfg.timeScale,
                                    4 * kKiB);
        prof.memPhaseInstrs = 30000;
        prof.computePhaseInstrs = 30000;
        int i = 0;
        for (auto *task : sys.tasks()) {
            sources.push_back(
                std::make_unique<workload::SyntheticTraceGenerator>(
                    prof, 7777 + static_cast<std::uint64_t>(i++),
                    prof.footprintBytes / cfg.timeScale));
            task->source = sources.back().get();
        }
    }
    return sys.run(opts.warmupQuanta, opts.measureQuanta);
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = parseArgs(argc, argv);
    const std::vector<bool> behaviours{false, true};
    const std::vector<Policy> policies{Policy::NoRefresh,
                                       Policy::AllBank,
                                       Policy::PerBank,
                                       Policy::CoDesign};

    std::cout << "Ablation: steady vs phased GemsFDTD x8 (32Gb); "
                 "elastic deferral hides refresh\nin compute "
                 "phases\n\n";

    // Each cell builds its own System (and swaps trace sources on
    // it), so it is queued as a self-contained thunk.
    GridRunner grid(opts);
    // cells[behaviour][policy]
    std::vector<std::vector<std::size_t>> cells(behaviours.size());
    for (std::size_t b = 0; b < behaviours.size(); ++b) {
        const bool phased = behaviours[b];
        for (auto policy : policies) {
            cells[b].push_back(grid.add([opts, policy, phased] {
                return runProfile(opts, policy, phased);
            }));
        }
    }
    grid.run();

    core::Table table({"behaviour", "all-bank deg.", "per-bank deg.",
                       "co-design vs all-bank"});
    for (std::size_t b = 0; b < behaviours.size(); ++b) {
        const auto &nr = grid[cells[b][0]];
        const auto &ab = grid[cells[b][1]];
        const auto &pb = grid[cells[b][2]];
        const auto &cd = grid[cells[b][3]];
        table.addRow(
            {behaviours[b] ? "phased" : "steady",
             core::fmt((1.0 - ab.harmonicMeanIpc / nr.harmonicMeanIpc)
                           * 100.0,
                       1)
                 + "%",
             core::fmt((1.0 - pb.harmonicMeanIpc / nr.harmonicMeanIpc)
                           * 100.0,
                       1)
                 + "%",
             core::pctImprovement(cd.speedupOver(ab))});
    }

    emit(opts, table, "abl_phases");
    return 0;
}
