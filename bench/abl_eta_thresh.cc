/**
 * @file
 * Ablation: the eta_thresh fairness valve of Algorithm 3
 * (paper section 5.4).
 *
 * eta = 1 disables refresh-aware deviation entirely; small values
 * (2, 3) disable it "gracefully"; large values give the scheduler
 * full freedom.  Reported: IPC, the fraction of reads that hit a
 * refreshing bank, scheduler pick composition, and vruntime spread
 * (fairness).
 */

#include "bench_util.hh"

using namespace refsched;
using namespace refsched::bench;
using core::Policy;

int
main(int argc, char **argv)
{
    const auto opts = parseArgs(argc, argv);
    const std::string wl = "WL-5";
    const std::vector<int> etas{1, 2, 3, 4, 8, 64};

    std::cout << "Ablation: eta_thresh sweep under the co-design ("
              << wl << ", 32Gb)\n\n";

    GridRunner grid(opts);
    std::vector<std::size_t> cells;
    for (int eta : etas) {
        auto cfg = core::makeConfig(wl, Policy::CoDesign,
                                    dram::DensityGb::d32,
                                    milliseconds(64.0), 2, 4,
                                    opts.timeScale);
        cfg.etaThresh = eta;
        cfg.bestEffort = (eta > 1);
        cells.push_back(grid.add(std::move(cfg)));
    }
    grid.run();

    core::Table table({"eta", "hmean IPC", "blocked reads", "clean",
                       "deferred", "best-effort", "fallback",
                       "vruntime spread (quanta)"});
    for (std::size_t i = 0; i < etas.size(); ++i) {
        const auto &m = grid[cells[i]];
        table.addRow({std::to_string(etas[i]),
                      core::fmt(m.harmonicMeanIpc),
                      core::fmt(m.blockedReadFraction * 100.0, 2) + "%",
                      std::to_string(m.cleanPicks),
                      std::to_string(m.deferredPicks),
                      std::to_string(m.bestEffortPicks),
                      std::to_string(m.fallbackPicks),
                      core::fmt(m.vruntimeSpreadQuanta, 2)});
    }

    emit(opts, table, "abl_eta_thresh");
    std::cout << "\nExpectation: IPC and refresh avoidance grow with "
                 "eta while fairness (spread)\nstays bounded -- the "
                 "aligned rotation keeps the schedule fair even with "
                 "full freedom.\n";
    return 0;
}
