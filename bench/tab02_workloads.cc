/**
 * @file
 * Table 2: the workload mixes and their MPKI classes.
 *
 * Each synthetic benchmark profile is run standalone and its
 * *measured* MPKI (L2 demand misses per kilo-instruction) is
 * compared to the class the paper's Table 2 assigns (H > 10,
 * 1 <= M <= 10, L < 1).
 */

#include "bench_util.hh"
#include "workload/profile.hh"

using namespace refsched;
using namespace refsched::bench;

namespace
{

core::SystemConfig
standaloneConfig(const BenchOptions &opts, const std::string &name)
{
    core::SystemConfig cfg;
    cfg.numCores = 1;
    cfg.tasksPerCore = 1;
    cfg.timeScale = opts.timeScale;
    cfg.applyPolicy(core::Policy::NoRefresh);
    cfg.benchmarks = {name};
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = parseArgs(argc, argv);
    const auto names = workload::builtinProfileNames();

    std::cout << "Benchmark profiles: measured vs intended MPKI\n\n";

    GridRunner grid(opts);
    std::vector<std::size_t> cells;
    for (const auto &name : names)
        cells.push_back(grid.add(standaloneConfig(opts, name)));
    grid.run();

    core::Table profiles({"benchmark", "footprint (MiB)",
                          "analytic MPKI", "measured MPKI",
                          "measured class", "paper class"});
    for (std::size_t i = 0; i < names.size(); ++i) {
        const auto &prof = workload::profileByName(names[i]);
        const double mpki = grid[cells[i]].tasks.front().mpki;

        profiles.addRow(
            {names[i],
             core::fmt(static_cast<double>(prof.footprintBytes)
                           / static_cast<double>(kMiB),
                       0),
             core::fmt(prof.expectedMpki(), 1), core::fmt(mpki, 1),
             workload::toString(
                 workload::BenchmarkProfile::classify(mpki)),
             workload::toString(prof.paperClass)});
    }
    emit(opts, profiles, "tab02_profiles");

    std::cout << "\nTable 2: workload mixes (dual-core 1:4)\n\n";
    core::Table mixes({"workload", "composition", "class"});
    for (const auto &wl : workload::table2Workloads()) {
        std::string comp;
        for (const auto &[bench, count] : wl.mix) {
            if (!comp.empty())
                comp += ", ";
            comp += bench + "(" + std::to_string(count) + ")";
        }
        mixes.addRow({wl.name, comp, wl.mpkiLabel});
    }
    emit(opts, mixes, "tab02_mixes");
    return 0;
}
