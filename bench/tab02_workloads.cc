/**
 * @file
 * Table 2: the workload mixes and their MPKI classes.
 *
 * Each synthetic benchmark profile is run standalone and its
 * *measured* MPKI (L2 demand misses per kilo-instruction) is
 * compared to the class the paper's Table 2 assigns (H > 10,
 * 1 <= M <= 10, L < 1).
 */

#include "bench_util.hh"
#include "workload/profile.hh"

using namespace refsched;
using namespace refsched::bench;

int
main(int argc, char **argv)
{
    const auto opts = parseArgs(argc, argv);

    std::cout << "Benchmark profiles: measured vs intended MPKI\n\n";
    core::Table profiles({"benchmark", "footprint (MiB)",
                          "analytic MPKI", "measured MPKI",
                          "measured class", "paper class"});

    for (const auto &name : workload::builtinProfileNames()) {
        const auto &prof = workload::profileByName(name);

        core::SystemConfig cfg;
        cfg.numCores = 1;
        cfg.tasksPerCore = 1;
        cfg.timeScale = opts.timeScale;
        cfg.applyPolicy(core::Policy::NoRefresh);
        cfg.benchmarks = {name};
        core::RunOptions run;
        run.warmupQuanta = opts.warmupQuanta;
        run.measureQuanta = opts.measureQuanta;
        const auto m = core::runOnce(cfg, run);
        const double mpki = m.tasks.front().mpki;

        profiles.addRow(
            {name,
             core::fmt(static_cast<double>(prof.footprintBytes)
                           / static_cast<double>(kMiB),
                       0),
             core::fmt(prof.expectedMpki(), 1), core::fmt(mpki, 1),
             workload::toString(
                 workload::BenchmarkProfile::classify(mpki)),
             workload::toString(prof.paperClass)});
    }
    emit(opts, profiles);

    std::cout << "\nTable 2: workload mixes (dual-core 1:4)\n\n";
    core::Table mixes({"workload", "composition", "class"});
    for (const auto &wl : workload::table2Workloads()) {
        std::string comp;
        for (const auto &[bench, count] : wl.mix) {
            if (!comp.empty())
                comp += ", ";
            comp += bench + "(" + std::to_string(count) + ")";
        }
        mixes.addRow({wl.name, comp, wl.mpkiLabel});
    }
    emit(opts, mixes);
    return 0;
}
