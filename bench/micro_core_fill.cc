/**
 * @file
 * Microbenchmarks for the core's DRAM-fill bookkeeping: onFill used
 * to scan the outstanding-miss deque linearly per completion, which
 * is O(depth) exactly when memory-level parallelism is high; the
 * slot-array lookup replaced it with O(1).  The out-of-order variant
 * below is the old scan's worst case -- every fill lands on a
 * non-head entry of a full deque -- and guards the constant-time
 * behaviour against regression.
 *
 * The port stub completes reads itself (no MemoryController), so
 * the measured work is the core issue loop + fill path, not FR-FCFS.
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <deque>

#include "cache/cache_hierarchy.hh"
#include "cpu/core.hh"
#include "dram/address_mapping.hh"
#include "dram/timings.hh"
#include "memctrl/memory_port.hh"
#include "os/buddy_allocator.hh"
#include "os/task.hh"
#include "os/virtual_memory.hh"
#include "simcore/event_queue.hh"

using namespace refsched;

namespace
{

/**
 * MemoryPort that acks every read after a fixed latency, optionally
 * INVERTING completion order within the in-flight window: each new
 * read completes sooner than the previous one, so the oldest miss
 * (the deque head) always returns last and the deque sits at full
 * MSHR depth when every fill arrives.
 */
class CompletingPort final : public memctrl::MemoryPort
{
  public:
    CompletingPort(EventQueue &eq, Tick baseLatency, bool inverted)
        : eq_(eq), baseLatency_(baseLatency), inverted_(inverted)
    {
    }

    bool
    enqueue(memctrl::Request req) override
    {
        if (!req.completion)
            return true;  // posted write
        Tick latency = baseLatency_;
        if (inverted_) {
            // Newer requests finish earlier; the window resets once
            // the schedule would go below half the base latency.
            latency = baseLatency_ - inFlight_ * step_;
            if (latency < baseLatency_ / 2) {
                inFlight_ = 0;
                latency = baseLatency_;
            }
            ++inFlight_;
        }
        eq_.schedule(eq_.now() + latency, *req.completion,
                     req.cookie0, req.cookie1);
        return true;
    }

    void
    requestRetryNotification(std::function<void()>) override
    {
    }

  private:
    EventQueue &eq_;
    Tick baseLatency_;
    bool inverted_;
    int inFlight_ = 0;
    static constexpr Tick step_ = 1500;
};

/** Independent blocking misses striding a footprint the small L2
 *  cannot hold: every access reaches the port. */
class StrideMissSource final : public cpu::InstructionSource
{
  public:
    cpu::TraceEntry
    next() override
    {
        cpu::TraceEntry e;
        e.gap = 3;
        e.vaddr = next_;
        next_ = (next_ + 64) % (256 * kKiB);
        return e;
    }

  private:
    Addr next_ = 0;
};

struct FillBench
{
    FillBench(int mshrs, Tick latency, bool inverted)
        : dev(dram::makeDdr3_1600(dram::DensityGb::d32,
                                  milliseconds(64.0), 256)),
          mapping(dev.org), buddy(mapping), vm(mapping, buddy),
          caches(1, smallCaches()),
          port(eq, latency, inverted),
          core(eq, 0, params(mshrs), caches, port, vm),
          task(1, "fill", mapping.totalBanks())
    {
        // Pre-fault the footprint so no page faults pollute timing.
        for (Addr a = 0; a < 256 * kKiB; a += mapping.pageBytes())
            vm.translate(task, a);
        task.source = &src;
        core.setTask(&task, ~Tick{0} >> 1);
    }

    static cpu::CoreParams
    params(int mshrs)
    {
        cpu::CoreParams p;
        p.mshrCount = mshrs;
        return p;
    }

    static cache::HierarchyParams
    smallCaches()
    {
        cache::HierarchyParams p;
        p.l1 = cache::CacheParams{1 * kKiB, 2, 64, 2};
        p.l2 = cache::CacheParams{8 * kKiB, 4, 64, 20};
        return p;
    }

    EventQueue eq;
    dram::DramDeviceConfig dev;
    dram::AddressMapping mapping;
    os::BuddyAllocator buddy;
    os::VirtualMemory vm;
    cache::CacheHierarchy caches;
    CompletingPort port;
    cpu::Core core;
    StrideMissSource src;
    os::Task task;
};

constexpr Tick kChunk = 100'000;  // sim ticks advanced per iteration

void
BM_CoreFillInOrder(benchmark::State &state)
{
    // Fills return in issue order: each completion hits the deque
    // head and pops immediately, so the deque stays shallow.
    FillBench b(static_cast<int>(state.range(0)), 50'000, false);
    for (auto _ : state)
        b.eq.runUntil(b.eq.now() + kChunk);
    state.counters["fills"] = b.core.dramReads.value();
}
BENCHMARK(BM_CoreFillInOrder)->Arg(16)->Arg(64);

void
BM_CoreFillOutOfOrder(benchmark::State &state)
{
    // Inverted completion order: the head returns last, so every
    // fill lands mid-deque at full MSHR depth -- the linear scan's
    // O(depth) worst case, O(1) with the slot array.
    FillBench b(static_cast<int>(state.range(0)), 50'000, true);
    for (auto _ : state)
        b.eq.runUntil(b.eq.now() + kChunk);
    state.counters["fills"] = b.core.dramReads.value();
}
BENCHMARK(BM_CoreFillOutOfOrder)->Arg(16)->Arg(64);

} // namespace

BENCHMARK_MAIN();
