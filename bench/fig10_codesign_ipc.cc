/**
 * @file
 * Figure 10: per-workload IPC improvement of per-bank refresh and
 * the co-design, normalized to all-bank refresh, for 16/24/32 Gb
 * chips.
 *
 * Paper shape: co-design averages +16.2% / +12.1% / +9.03% over
 * all-bank at 32/24/16 Gb (+6.3% / +5.4% / +2.5% over per-bank);
 * low-MPKI workloads (WL-2/3/4) see no improvement.
 */

#include "bench_util.hh"

using namespace refsched;
using namespace refsched::bench;
using core::Policy;

int
main(int argc, char **argv)
{
    const auto opts = parseArgs(argc, argv);
    const auto workloads = workloadNames(opts);
    const std::vector<dram::DensityGb> densities{
        dram::DensityGb::d16, dram::DensityGb::d24,
        dram::DensityGb::d32};

    GridRunner grid(opts);
    struct Cell
    {
        std::size_t base, pb, cd;
    };
    std::vector<std::vector<Cell>> cells(densities.size());
    for (std::size_t d = 0; d < densities.size(); ++d) {
        for (const auto &wl : workloads) {
            cells[d].push_back(
                {grid.add(wl, Policy::AllBank, densities[d]),
                 grid.add(wl, Policy::PerBank, densities[d]),
                 grid.add(wl, Policy::CoDesign, densities[d])});
        }
    }
    grid.run();

    for (std::size_t d = 0; d < densities.size(); ++d) {
        std::cout << "Figure 10 (" << dram::toString(densities[d])
                  << "): IPC vs all-bank refresh\n\n";
        core::Table table({"workload", "class", "all-bank IPC",
                           "per-bank", "co-design"});
        std::vector<double> pbAll, cdAll;
        for (std::size_t w = 0; w < workloads.size(); ++w) {
            const auto &wl = workloads[w];
            const auto &base = grid[cells[d][w].base];
            const auto &pb = grid[cells[d][w].pb];
            const auto &cd = grid[cells[d][w].cd];
            pbAll.push_back(pb.speedupOver(base));
            cdAll.push_back(cd.speedupOver(base));
            table.addRow({wl,
                          workload::workloadByName(wl).mpkiLabel,
                          core::fmt(base.harmonicMeanIpc),
                          core::pctImprovement(pb.speedupOver(base)),
                          core::pctImprovement(cd.speedupOver(base))});
        }
        table.addRow({"geomean", "", "",
                      core::pctImprovement(geomean(pbAll)),
                      core::pctImprovement(geomean(cdAll))});
        emit(opts, table, "fig10_" + dram::toString(densities[d]));
        std::cout << "\n";
    }

    std::cout << "Paper reference: co-design +16.2%/+12.1%/+9.03% "
                 "over all-bank and\n+6.3%/+5.4%/+2.5% over per-bank "
                 "at 32/24/16 Gb; WL-2/3/4 flat.\n";
    return 0;
}
