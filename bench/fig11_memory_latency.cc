/**
 * @file
 * Figure 11: average memory access latency (in DRAM clock cycles)
 * per workload under all-bank, per-bank and co-design, at 32 Gb.
 *
 * Paper shape: the co-design has the lowest latency everywhere --
 * none of the scheduled tasks' requests wait behind a refresh.
 */

#include "bench_util.hh"

using namespace refsched;
using namespace refsched::bench;
using core::Policy;

int
main(int argc, char **argv)
{
    const auto opts = parseArgs(argc, argv);
    const auto workloads = workloadNames(opts);
    const auto density = dram::DensityGb::d32;

    std::cout << "Figure 11: average memory access latency "
                 "(memory cycles, lower is better), 32Gb\n\n";

    GridRunner grid(opts);
    struct Cell
    {
        std::size_t ab, pb, cd;
    };
    std::vector<Cell> cells;
    for (const auto &wl : workloads) {
        cells.push_back({grid.add(wl, Policy::AllBank, density),
                         grid.add(wl, Policy::PerBank, density),
                         grid.add(wl, Policy::CoDesign, density)});
    }
    grid.run();

    core::Table table({"workload", "all-bank", "per-bank", "co-design",
                       "co-design blocked reads"});
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        const auto &ab = grid[cells[w].ab];
        const auto &pb = grid[cells[w].pb];
        const auto &cd = grid[cells[w].cd];
        table.addRow(
            {workloads[w], core::fmt(ab.avgReadLatencyMemCycles, 1),
             core::fmt(pb.avgReadLatencyMemCycles, 1),
             core::fmt(cd.avgReadLatencyMemCycles, 1),
             core::fmt(cd.blockedReadFraction * 100.0, 3) + "%"});
    }

    emit(opts, table, "fig11");
    std::cout << "\nPaper reference: co-design reduces average memory "
                 "latency significantly since\nno on-demand request "
                 "of a scheduled task is stalled by refresh.\n";
    return 0;
}
