/**
 * @file
 * Ablation: banks per task under the co-design (paper footnote 11:
 * "we have experimented with 4 and 2 banks as well; while they
 * improve performance, the improvements are not as high as the
 * 6 banks case").
 */

#include "bench_util.hh"

using namespace refsched;
using namespace refsched::bench;
using core::Policy;

int
main(int argc, char **argv)
{
    const auto opts = parseArgs(argc, argv);
    const auto workloads = workloadNames(opts);
    const auto density = dram::DensityGb::d32;

    std::cout << "Ablation: banks/task (per rank) under the "
                 "co-design, vs all-bank (32Gb)\n\n";

    core::Table table({"banks/task", "geomean vs all-bank"});
    for (int banks : {2, 4, 6, 7}) {
        std::vector<double> speedups;
        for (const auto &wl : workloads) {
            const auto base =
                runCell(opts, wl, Policy::AllBank, density);
            auto cfg = core::makeConfig(wl, Policy::CoDesign, density,
                                        milliseconds(64.0), 2, 4,
                                        opts.timeScale);
            cfg.banksPerTaskPerRank = banks;
            core::RunOptions run;
            run.warmupQuanta = opts.warmupQuanta;
            run.measureQuanta = opts.measureQuanta;
            const auto cd = core::runOnce(cfg, run);
            speedups.push_back(cd.speedupOver(base));
        }
        table.addRow({std::to_string(banks),
                      core::pctImprovement(geomean(speedups))});
    }

    emit(opts, table);
    std::cout << "\nPaper reference: 6 banks/task is the sweet spot "
                 "at 1:4 consolidation\n(footnote 11).\n";
    return 0;
}
