/**
 * @file
 * Ablation: banks per task under the co-design (paper footnote 11:
 * "we have experimented with 4 and 2 banks as well; while they
 * improve performance, the improvements are not as high as the
 * 6 banks case").
 */

#include "bench_util.hh"

using namespace refsched;
using namespace refsched::bench;
using core::Policy;

int
main(int argc, char **argv)
{
    const auto opts = parseArgs(argc, argv);
    const auto workloads = workloadNames(opts);
    const auto density = dram::DensityGb::d32;
    const std::vector<int> bankCounts{2, 4, 6, 7};

    std::cout << "Ablation: banks/task (per rank) under the "
                 "co-design, vs all-bank (32Gb)\n\n";

    GridRunner grid(opts);
    // The all-bank baseline does not depend on banks/task: run it
    // once per workload and reuse it across the sweep.
    std::vector<std::size_t> baseCells;
    for (const auto &wl : workloads)
        baseCells.push_back(grid.add(wl, Policy::AllBank, density));
    // cdCells[bankCount][workload]
    std::vector<std::vector<std::size_t>> cdCells(bankCounts.size());
    for (std::size_t b = 0; b < bankCounts.size(); ++b) {
        for (const auto &wl : workloads) {
            auto cfg = core::makeConfig(wl, Policy::CoDesign, density,
                                        milliseconds(64.0), 2, 4,
                                        opts.timeScale);
            cfg.banksPerTaskPerRank = bankCounts[b];
            cdCells[b].push_back(grid.add(std::move(cfg)));
        }
    }
    grid.run();

    core::Table table({"banks/task", "geomean vs all-bank"});
    for (std::size_t b = 0; b < bankCounts.size(); ++b) {
        std::vector<double> speedups;
        for (std::size_t w = 0; w < workloads.size(); ++w) {
            speedups.push_back(
                grid[cdCells[b][w]].speedupOver(grid[baseCells[w]]));
        }
        table.addRow({std::to_string(bankCounts[b]),
                      core::pctImprovement(geomean(speedups))});
    }

    emit(opts, table, "abl_banks_per_task");
    std::cout << "\nPaper reference: 6 banks/task is the sweet spot "
                 "at 1:4 consolidation\n(footnote 11).\n";
    return 0;
}
