# ctest driver for the open-loop serving layer: drive a bursty MMPP
# arrival stream through the co-design machine with the invariant
# checkers armed, export stats JSON, then gate on (a) the serving.*
# schema being present, (b) the injector having actually admitted,
# completed, and refresh-blocked requests, and (c) the tail ordering
# the whole feature exists to measure: the refresh-blocked p99 must
# be at least the clean p99.
#
# Usage (see tools/CMakeLists.txt):
#   cmake -DCLI=<refsched_cli> -DOUT=<dir> -P serving_smoke.cmake

foreach(var CLI OUT)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "serving_smoke.cmake needs -D${var}=...")
    endif()
endforeach()

file(MAKE_DIRECTORY "${OUT}")
set(stats "${OUT}/serving_stats.json")

# warmup=0 keeps every admitted request inside the measured region;
# the load/measure pair is tuned so this deterministic run completes
# enough requests on both sides of the clean/blocked split for the
# quantile gate to be meaningful.
execute_process(
    COMMAND "${CLI}" --policy co-design --workload WL-5
        --scale 1024 --channels 2 --warmup 0 --measure 24 --seed 7
        --serving "arrival=mmpp,load=1.6,pool=8,queue=64,lines=4"
        --validate --stats-json "${stats}"
    RESULT_VARIABLE rc
    OUTPUT_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "refsched_cli --serving failed (rc=${rc})")
endif()

# Schema gate: the serving identity echo and every serving counter /
# histogram must appear in the export, with tail quantiles.
file(READ "${stats}" stats_text)
foreach(key
        "\"serving\"" serving.arrivals serving.drops
        serving.completed serving.backlogPeak serving.retryWaits
        serving.queueDelay serving.reqLatency
        serving.reqLatencyClean serving.reqLatencyBlocked
        "\"p50\"" "\"p95\"" "\"p99\"" "\"p999\"")
    if(NOT stats_text MATCHES "${key}")
        message(FATAL_ERROR "stats JSON missing ${key}")
    endif()
endforeach()

# Liveness gate: arrivals were admitted and completed, and the run
# produced refresh-blocked completions (otherwise the tail gate
# below compares against an empty histogram).
foreach(key serving.arrivals serving.completed)
    if(stats_text MATCHES "\"${key}\": 0[,\n}]")
        message(FATAL_ERROR "${key} is zero: serving never ran")
    endif()
endforeach()
string(REGEX MATCH
    "\"serving.reqLatencyBlocked\": {[^}]*\"count\": ([0-9]+)"
    _ "${stats_text}")
if(NOT CMAKE_MATCH_1 OR CMAKE_MATCH_1 EQUAL 0)
    message(FATAL_ERROR
        "no refresh-blocked completions: the smoke config no longer "
        "exercises the blocked path")
endif()

# Tail-ordering gate: requests that waited behind a refresh must not
# have a lighter tail than clean ones.
string(REGEX MATCH
    "\"serving.reqLatencyClean\": {[^}]*\"p99\": ([0-9.eE+-]+)"
    _ "${stats_text}")
set(clean_p99 "${CMAKE_MATCH_1}")
string(REGEX MATCH
    "\"serving.reqLatencyBlocked\": {[^}]*\"p99\": ([0-9.eE+-]+)"
    _ "${stats_text}")
set(blocked_p99 "${CMAKE_MATCH_1}")
if(NOT clean_p99 OR NOT blocked_p99)
    message(FATAL_ERROR "could not extract p99 quantiles")
endif()
if(blocked_p99 LESS clean_p99)
    message(FATAL_ERROR
        "blocked p99 (${blocked_p99}) < clean p99 (${clean_p99}): "
        "refresh blocking no longer shows in the tail")
endif()
message(STATUS
    "serving smoke ok: clean p99 ${clean_p99}, blocked p99 "
    "${blocked_p99}")
