/**
 * @file
 * refsched command-line driver: run any single experiment the
 * library supports without writing code.
 *
 *   refsched_cli --workload WL-8 --policy co-design --density 32
 *   refsched_cli --benchmarks mcf,povray,mcf,povray --cores 2 \
 *                --policy per-bank --dump-stats
 *
 * Prints the headline metrics, a per-task table, and (optionally)
 * every registered statistic.  Exit code 0 on success, 2 on usage
 * errors.
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/report.hh"
#include "core/system.hh"
#include "obs/timeline.hh"
#include "workload/workloads.hh"

using namespace refsched;

namespace
{

struct CliOptions
{
    std::string workload;
    std::vector<std::string> benchmarks;
    std::string scenarioPath;
    std::string servingSpec;
    core::Policy policy = core::Policy::CoDesign;
    int densityGb = 32;
    double retentionMs = 64.0;
    int cores = 2;
    int tasksPerCore = 4;
    int channels = 1;
    int shards = 0;
    Tick shardEpoch = 0;  // 0 keeps the config default
    int coreLanes = 0;
    Tick coreEpoch = 0;   // 0 keeps the config default
    unsigned timeScale = 128;
    int warmupQuanta = 8;
    int measureQuanta = 16;
    int etaThresh = 64;
    int banksPerTask = -1;
    std::string partition;  // "", "soft", "hard", "none"
    std::uint64_t seed = 1;
    bool validate = false;
    bool dumpStats = false;
    bool csv = false;
    bool json = false;
    bool verbose = false;
    std::string timelinePath;
    std::string statsJsonPath;
    std::string telemetryPath;
    Tick telemetryPeriod = 0;  // 0 keeps the config default
    obs::TimelineOptions window;
};

/** Minimal JSON rendering of the metrics (machine consumption). */
void
printJson(std::ostream &os, const core::SystemConfig &cfg,
          const core::Metrics &m)
{
    os << "{\n"
       << "  \"policy\": \"" << core::toString(cfg.policy) << "\",\n"
       << "  \"density\": \"" << dram::toString(cfg.density)
       << "\",\n"
       << "  \"timeScale\": " << cfg.timeScale << ",\n"
       << "  \"metrics\": ";
    m.toJson(os, 2);
    os << "\n}\n";
}

[[noreturn]] void
usage(const char *argv0, const std::string &error = "")
{
    if (!error.empty())
        std::cerr << "error: " << error << "\n\n";
    std::cerr
        << "usage: " << argv0 << " [options]\n\n"
        << "workload selection (one of):\n"
        << "  --workload NAME        Table 2 workload (WL-1..WL-10)\n"
        << "  --benchmarks a,b,...   explicit per-task benchmark "
           "list\n"
        << "                         (mcf bwaves stream GemsFDTD "
           "npb_ua povray h264ref)\n"
        << "  --scenario FILE        dynamic-workload scenario script "
           "(tenant churn,\n"
        << "                         phase changes, page migration; "
           "see workload/scenario.hh)\n"
        << "  --serving SPEC         open-loop serving traffic on top "
           "of the task set:\n"
        << "                         arrival=poisson|mmpp,load=<req/"
           "us>,pool=N,queue=N,\n"
        << "                         lines=N[,burst-ratio=X,burst-"
           "frac=X,burst-dwell=X]\n"
        << "                         (see workload/serving.hh)\n\n"
        << "policy and hardware:\n"
        << "  --policy P             all-bank | per-bank | "
           "per-bank-ooo |\n"
        << "                         ddr4-2x | ddr4-4x | adaptive | "
           "co-design | no-refresh\n"
        << "  --density G            8 | 16 | 24 | 32  (default 32)\n"
        << "  --retention MS         64 or 32 (default 64)\n"
        << "  --cores N              (default 2)\n"
        << "  --channels N           memory channels (default 1)\n"
        << "  --tasks-per-core N     consolidation ratio (default 4)\n"
        << "  --banks-per-task N     override the 8 - 8/ratio rule\n"
        << "  --partition M          soft | hard | none (default: "
           "policy's)\n"
        << "  --eta N                Algorithm 3 fairness valve\n\n"
        << "simulation control:\n"
        << "  --scale N              ratio-preserving timeScale "
           "(default 128)\n"
        << "  --warmup N             warm-up quanta (default 8)\n"
        << "  --measure N            measured quanta (default 16)\n"
        << "  --seed S               trace RNG seed\n"
        << "  --validate             run the invariant checkers; "
           "exit 1 on any violation\n"
        << "  --shards N             sharded event kernel: one lane "
           "per channel,\n"
        << "                         N phase-B workers (0 = legacy "
           "kernel, default)\n"
        << "  --shard-epoch PS       sharded-kernel window length "
           "(default 15000)\n"
        << "  --core-lanes N         core-cluster lanes: cores run "
           "in N parallel\n"
        << "                         clusters (clamped to cores; 0 = "
           "off, default).\n"
        << "                         Results are identical for every "
           "N >= 1\n"
        << "  --core-epoch PS        core-lane window length "
           "(default 5000)\n\n"
        << "output:\n"
        << "  --dump-stats           print every registered stat\n"
        << "  --csv                  per-task table as CSV\n"
        << "  --verbose              inform-level logging\n\n"
        << "observability:\n"
        << "  --timeline FILE        write a Chrome trace-event "
           "timeline\n"
        << "                         (open in Perfetto / "
           "chrome://tracing)\n"
        << "  --stats-json FILE      write metrics + self-profile + "
           "all stats as JSON\n"
        << "  --telemetry FILE       sample queue depths, row-hit/"
           "refresh rates,\n"
        << "                         per-core progress and serving "
           "backlog every\n"
        << "                         telemetry period; write JSONL "
           "(or CSV when FILE\n"
        << "                         ends in .csv).  With --timeline "
           "the samples are\n"
        << "                         also merged as Perfetto counter "
           "tracks\n"
        << "  --telemetry-period PS  sampling cadence in picoseconds "
           "(default 1000000)\n"
        << "  --trace-window S:E     restrict the timeline to "
           "simulated ticks [S, E)\n"
        << "                         (picoseconds; default: whole "
           "run)\n";
    std::exit(2);
}

std::vector<std::string>
splitCsv(const std::string &s)
{
    std::vector<std::string> out;
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

core::Policy
parsePolicy(const std::string &s, const char *argv0)
{
    for (auto p : {core::Policy::AllBank, core::Policy::PerBank,
                   core::Policy::PerBankOoo, core::Policy::Ddr4x2,
                   core::Policy::Ddr4x4, core::Policy::Adaptive,
                   core::Policy::CoDesign, core::Policy::NoRefresh}) {
        if (core::toString(p) == s)
            return p;
    }
    usage(argv0, "unknown policy: " + s);
}

CliOptions
parse(int argc, char **argv)
{
    CliOptions o;
    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage(argv[0], std::string(argv[i]) + " needs a value");
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--workload") {
            o.workload = need(i);
        } else if (a == "--benchmarks") {
            o.benchmarks = splitCsv(need(i));
        } else if (a == "--scenario") {
            o.scenarioPath = need(i);
        } else if (a == "--serving") {
            o.servingSpec = need(i);
        } else if (a == "--policy") {
            o.policy = parsePolicy(need(i), argv[0]);
        } else if (a == "--density") {
            o.densityGb = std::atoi(need(i));
        } else if (a == "--retention") {
            o.retentionMs = std::atof(need(i));
        } else if (a == "--cores") {
            o.cores = std::atoi(need(i));
        } else if (a == "--channels") {
            o.channels = std::atoi(need(i));
        } else if (a == "--shards") {
            o.shards = std::atoi(need(i));
        } else if (a == "--shard-epoch") {
            o.shardEpoch = static_cast<Tick>(
                std::strtoull(need(i), nullptr, 10));
        } else if (a == "--core-lanes") {
            o.coreLanes = std::atoi(need(i));
        } else if (a == "--core-epoch") {
            o.coreEpoch = static_cast<Tick>(
                std::strtoull(need(i), nullptr, 10));
        } else if (a == "--tasks-per-core") {
            o.tasksPerCore = std::atoi(need(i));
        } else if (a == "--banks-per-task") {
            o.banksPerTask = std::atoi(need(i));
        } else if (a == "--partition") {
            o.partition = need(i);
        } else if (a == "--eta") {
            o.etaThresh = std::atoi(need(i));
        } else if (a == "--scale") {
            o.timeScale = static_cast<unsigned>(std::atoi(need(i)));
        } else if (a == "--warmup") {
            o.warmupQuanta = std::atoi(need(i));
        } else if (a == "--measure") {
            o.measureQuanta = std::atoi(need(i));
        } else if (a == "--seed") {
            o.seed = static_cast<std::uint64_t>(
                std::strtoull(need(i), nullptr, 10));
        } else if (a == "--validate") {
            o.validate = true;
        } else if (a == "--timeline") {
            o.timelinePath = need(i);
        } else if (a == "--stats-json") {
            o.statsJsonPath = need(i);
        } else if (a == "--telemetry") {
            o.telemetryPath = need(i);
        } else if (a == "--telemetry-period") {
            o.telemetryPeriod = static_cast<Tick>(
                std::strtoull(need(i), nullptr, 10));
        } else if (a == "--trace-window") {
            const std::string w = need(i);
            const auto colon = w.find(':');
            if (colon == std::string::npos)
                usage(argv[0], "--trace-window wants START:END");
            o.window.windowStart = static_cast<Tick>(
                std::strtoull(w.substr(0, colon).c_str(), nullptr,
                              10));
            const std::string endStr = w.substr(colon + 1);
            o.window.windowEnd = endStr.empty()
                ? kMaxTick
                : static_cast<Tick>(
                      std::strtoull(endStr.c_str(), nullptr, 10));
            if (o.window.windowStart >= o.window.windowEnd)
                usage(argv[0], "--trace-window is empty");
        } else if (a == "--dump-stats") {
            o.dumpStats = true;
        } else if (a == "--json") {
            o.json = true;
        } else if (a == "--csv") {
            o.csv = true;
        } else if (a == "--verbose") {
            o.verbose = true;
        } else if (a == "--help" || a == "-h") {
            usage(argv[0]);
        } else {
            usage(argv[0], "unknown option: " + a);
        }
    }
    if (o.workload.empty() && o.benchmarks.empty())
        o.workload = "WL-5";
    return o;
}

core::SystemConfig
buildConfig(const CliOptions &o, const char *argv0)
{
    core::SystemConfig cfg;
    cfg.numCores = o.cores;
    cfg.tasksPerCore = o.tasksPerCore;
    cfg.density = static_cast<dram::DensityGb>(o.densityGb);
    cfg.tREFW = milliseconds(o.retentionMs);
    cfg.timeScale = o.timeScale;
    cfg.applyPolicy(o.policy);
    cfg.etaThresh = o.etaThresh;
    cfg.banksPerTaskPerRank = o.banksPerTask;
    cfg.seed = o.seed;
    cfg.validate = o.validate;
    cfg.channels = o.channels;
    cfg.shards = o.shards;
    if (o.shardEpoch > 0)
        cfg.shardEpoch = o.shardEpoch;
    cfg.coreLanes = o.coreLanes;
    if (o.coreEpoch > 0)
        cfg.coreLaneEpoch = o.coreEpoch;

    if (!o.partition.empty()) {
        if (o.partition == "soft")
            cfg.partitioning = core::Partitioning::Soft;
        else if (o.partition == "hard")
            cfg.partitioning = core::Partitioning::Hard;
        else if (o.partition == "none")
            cfg.partitioning = core::Partitioning::None;
        else
            usage(argv0, "unknown partition mode: " + o.partition);
    }

    if (!o.benchmarks.empty()) {
        if (static_cast<int>(o.benchmarks.size())
            != cfg.totalTasks()) {
            usage(argv0,
                  "--benchmarks needs exactly cores*tasks-per-core "
                  "entries ("
                      + std::to_string(cfg.totalTasks()) + ")");
        }
        cfg.benchmarks = o.benchmarks;
    } else {
        cfg.benchmarks = workload::workloadByName(o.workload)
                             .taskList(cfg.totalTasks());
    }
    if (!o.scenarioPath.empty())
        cfg.scenario = workload::ScenarioScript::parseFile(
            o.scenarioPath);
    if (!o.servingSpec.empty())
        cfg.serving = workload::ServingConfig::parse(o.servingSpec);
    if (!o.telemetryPath.empty()) {
        cfg.telemetry.enabled = true;
        if (o.telemetryPeriod > 0)
            cfg.telemetry.periodTicks = o.telemetryPeriod;
    }
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = parse(argc, argv);
    if (opts.verbose)
        setLogLevel(LogLevel::Inform);

    try {
        const auto cfg = buildConfig(opts, argv[0]);
        core::System sys(cfg);

        std::unique_ptr<obs::TimelineRecorder> timeline;
        if (!opts.timelinePath.empty()) {
            timeline = std::make_unique<obs::TimelineRecorder>(
                sys.controller().config().org, cfg.numCores,
                opts.window);
            sys.attachProbe(timeline.get());
        }

        const auto m =
            sys.run(opts.warmupQuanta, opts.measureQuanta);

        if (!opts.telemetryPath.empty()) {
            sys.telemetry()->writeFile(opts.telemetryPath);
            if (timeline)
                sys.telemetry()->exportCounters(*timeline);
        }
        if (timeline)
            timeline->writeFile(opts.timelinePath);
        if (!opts.statsJsonPath.empty()) {
            std::ofstream f(opts.statsJsonPath);
            if (!f)
                fatal("cannot open --stats-json file: ",
                      opts.statsJsonPath);
            sys.writeStatsJson(f, m);
        }

        const auto validationStatus = [&]() -> int {
            if (!opts.validate)
                return 0;
            if (m.validationViolations == 0) {
                std::cerr << "validation: clean\n";
                return 0;
            }
            std::cerr << "validation: " << m.validationViolations
                      << " violation(s); first: " << m.firstViolation
                      << "\n";
            return 1;
        };

        if (opts.json) {
            printJson(std::cout, cfg, m);
            return validationStatus();
        }

        std::cout << "policy=" << core::toString(cfg.policy)
                  << " density=" << dram::toString(cfg.density)
                  << " retention="
                  << core::fmt(opts.retentionMs, 0) << "ms cores="
                  << cfg.numCores << " ratio=1:" << cfg.tasksPerCore
                  << " scale=" << cfg.timeScale << "\n\n";

        std::cout << "harmonic-mean IPC   "
                  << core::fmt(m.harmonicMeanIpc) << "\n"
                  << "avg read latency    "
                  << core::fmt(m.avgReadLatencyMemCycles, 1)
                  << " memory cycles\n"
                  << "row hit rate        "
                  << core::fmt(m.rowHitRate * 100.0, 1) << "%\n"
                  << "dram reads/writes   " << m.dramReads << " / "
                  << m.dramWrites << "\n"
                  << "refresh commands    " << m.refreshCommands
                  << "\n"
                  << "blocked reads       "
                  << core::fmt(m.blockedReadFraction * 100.0, 3)
                  << "%\n"
                  << "energy              "
                  << core::fmt(m.energy.totalPj() / 1e9, 3)
                  << " mJ (refresh "
                  << core::fmt(m.energy.refreshShare() * 100.0, 1)
                  << "%), "
                  << core::fmt(m.energyPerInstructionPj, 1)
                  << " pJ/instr\n"
                  << "scheduler picks     " << m.cleanPicks
                  << " clean, " << m.deferredPicks << " deferred, "
                  << m.bestEffortPicks << " best-effort, "
                  << m.fallbackPicks << " fallback\n"
                  << "fairness spread     "
                  << core::fmt(m.vruntimeSpreadQuanta, 2)
                  << " quanta\n\n";

        core::Table tasks({"pid", "benchmark", "IPC", "MPKI",
                           "quanta", "dram reads", "resident pages",
                           "fallback pages"});
        for (const auto &t : m.tasks) {
            tasks.addRow({std::to_string(t.pid), t.benchmark,
                          core::fmt(t.ipc, 3), core::fmt(t.mpki, 1),
                          std::to_string(t.quantaRun),
                          std::to_string(t.dramReads),
                          std::to_string(t.residentPages),
                          std::to_string(t.fallbackAllocs)});
        }
        if (opts.csv)
            tasks.printCsv(std::cout);
        else
            tasks.print(std::cout);

        if (opts.dumpStats) {
            std::cout << "\n";
            sys.dumpStats(std::cout);
        }
        return validationStatus();
    } catch (const FatalError &e) {
        std::cerr << "fatal: " << e.what() << "\n";
        return 1;
    }
    return 0;
}
