/**
 * @file
 * Trace utility: record synthetic benchmark traces to a file,
 * inspect trace files, and sanity-check their statistics.
 *
 *   trace_tool record mcf 100000 mcf.trace [footprintMiB] [seed]
 *   trace_tool info mcf.trace
 */

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <string>

#include "core/report.hh"
#include "simcore/logging.hh"
#include "workload/profile.hh"
#include "workload/trace_file.hh"
#include "workload/trace_generator.hh"

using namespace refsched;
using namespace refsched::workload;

namespace
{

[[noreturn]] void
usage()
{
    std::cerr
        << "usage:\n"
        << "  trace_tool record BENCH N OUT [footprintMiB] [seed]\n"
        << "      record N entries of benchmark BENCH to OUT\n"
        << "  trace_tool info FILE\n"
        << "      print summary statistics of a trace file\n";
    std::exit(2);
}

int
record(int argc, char **argv)
{
    if (argc < 5)
        usage();
    const std::string bench = argv[2];
    const auto n = std::strtoull(argv[3], nullptr, 10);
    const std::string out = argv[4];
    const auto &prof = profileByName(bench);
    const std::uint64_t footprint = argc > 5
        ? std::strtoull(argv[5], nullptr, 10) * kMiB
        : prof.footprintBytes;
    const std::uint64_t seed =
        argc > 6 ? std::strtoull(argv[6], nullptr, 10) : 1;

    SyntheticTraceGenerator gen(prof, seed, footprint);
    const auto entries = recordTrace(gen, n);
    writeTraceFile(out, entries, prof.baseCpi);
    std::cout << "recorded " << entries.size() << " entries of "
              << bench << " (footprint "
              << footprint / kMiB << " MiB, seed " << seed << ") to "
              << out << "\n";
    return 0;
}

int
info(int argc, char **argv)
{
    if (argc < 3)
        usage();
    const auto trace = readTraceFile(argv[2]);

    std::uint64_t instrs = 0, writes = 0, seq = 0, dep = 0;
    Addr maxAddr = 0;
    std::map<std::uint64_t, std::uint64_t> pagesTouched;
    for (const auto &e : trace.entries) {
        instrs += e.gap + 1;
        writes += e.isWrite;
        seq += e.sequential;
        dep += e.dependent;
        maxAddr = std::max(maxAddr, e.vaddr);
        ++pagesTouched[e.vaddr >> 12];
    }

    const auto n = trace.entries.size();
    core::Table t({"metric", "value"});
    t.addRow({"entries", std::to_string(n)});
    t.addRow({"instructions", std::to_string(instrs)});
    t.addRow({"base CPI", core::fmt(trace.baseCpi, 2)});
    t.addRow({"mem-op fraction",
              core::fmt(static_cast<double>(n)
                            / static_cast<double>(instrs),
                        3)});
    t.addRow({"write fraction",
              core::fmt(static_cast<double>(writes)
                            / static_cast<double>(n),
                        3)});
    t.addRow({"sequential fraction",
              core::fmt(static_cast<double>(seq)
                            / static_cast<double>(n),
                        3)});
    t.addRow({"dependent fraction",
              core::fmt(static_cast<double>(dep)
                            / static_cast<double>(n),
                        3)});
    t.addRow({"max vaddr",
              core::fmt(static_cast<double>(maxAddr)
                            / static_cast<double>(kMiB),
                        1)
                  + " MiB"});
    t.addRow({"4K pages touched",
              std::to_string(pagesTouched.size())});
    t.print(std::cout);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        usage();
    try {
        if (std::strcmp(argv[1], "record") == 0)
            return record(argc, argv);
        if (std::strcmp(argv[1], "info") == 0)
            return info(argc, argv);
    } catch (const refsched::FatalError &e) {
        std::cerr << "fatal: " << e.what() << "\n";
        return 1;
    }
    usage();
}
