#!/usr/bin/env bash
#
# Simulation-performance regression gate.
#
#   tools/perf_regress.sh [--events-only] [--update] [jobs]
#
# Builds the release-bench preset (-O3 + IPO/LTO, REFSCHED_ASSERT and
# validation probes compiled out -- the configuration perf numbers
# are quoted from) and runs bench/perf_smoke against the checked-in
# baseline tools/perf_baseline.json:
#
#   events, events/quantum   must match the baseline exactly, for
#               the legacy-kernel rows and the sharded-kernel row
#               alike (the simulation is deterministic either way)
#   wall-clock, Mticks/s     may regress by at most 20% (skipped by
#               --events-only, which is what CI uses: host speed is
#               machine-dependent, event counts are not)
#
# --update re-records tools/perf_baseline.json from the current build
# instead of checking; use it when a change intentionally alters the
# event count, and quote the new trajectory in the PR.

set -euo pipefail

cd "$(dirname "$0")/.."

EVENTS_ONLY=""
UPDATE=0
JOBS="$(nproc)"
for arg in "$@"; do
    case "$arg" in
        --events-only) EVENTS_ONLY="--events-only" ;;
        --update) UPDATE=1 ;;
        *) JOBS="$arg" ;;
    esac
done

echo "=== release-bench: configure + build ==="
cmake --preset release-bench
cmake --build --preset release-bench -j "$JOBS" --target perf_smoke

BIN=build-release-bench/bench/perf_smoke
BASELINE=tools/perf_baseline.json

if [[ "$UPDATE" == 1 ]]; then
    echo "=== recording new baseline ($BASELINE) ==="
    "$BIN" --json "$BASELINE"
    echo "baseline updated; commit $BASELINE with the change that moved it"
    exit 0
fi

echo "=== perf_smoke --check $BASELINE ${EVENTS_ONLY} ==="
"$BIN" --check "$BASELINE" ${EVENTS_ONLY}
echo "perf regression gate clean"
