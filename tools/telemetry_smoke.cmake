# ctest driver for the sampled-telemetry subsystem: run the same
# 2-channel co-design cell with --telemetry across the shard counts
# of both timing groups and assert
#
#   identity     the telemetry JSONL is byte-identical for shards
#                1 vs 2 at core-lanes 0, and again at core-lanes 2
#                (the two groups are distinct timing modes and are
#                NOT compared against each other)
#   timeline     the merged counter tracks pass timeline_check's
#                schema + counter validation with samples present
#   self-profile the stats JSON carries the kernel self-profiler
#                (windows / parallelMs / imbalance) for sharded runs
#   csv          the ".csv" spelling of --telemetry produces a
#                header + data rows
#
# Usage (see tools/CMakeLists.txt):
#   cmake -DCLI=<refsched_cli> -DCHECK=<timeline_check> -DOUT=<dir>
#       -P telemetry_smoke.cmake

foreach(var CLI CHECK OUT)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "telemetry_smoke.cmake needs -D${var}=...")
    endif()
endforeach()

file(MAKE_DIRECTORY "${OUT}")

foreach(lanes 0 2)
    foreach(shards 1 2)
        set(tag "l${lanes}sh${shards}")
        execute_process(
            COMMAND "${CLI}" --policy co-design --workload WL-5
                --channels 2 --shards ${shards} --core-lanes ${lanes}
                --warmup 2 --measure 8 --seed 7
                --telemetry "${OUT}/${tag}.telemetry.jsonl"
                --timeline "${OUT}/${tag}.timeline.json"
                --stats-json "${OUT}/${tag}.stats.json"
            RESULT_VARIABLE rc
            OUTPUT_QUIET)
        if(NOT rc EQUAL 0)
            message(FATAL_ERROR
                "refsched_cli --telemetry ${tag} failed (rc=${rc})")
        endif()
    endforeach()
endforeach()

# Byte-identity within each timing group.
foreach(lanes 0 2)
    file(READ "${OUT}/l${lanes}sh1.telemetry.jsonl" tel1)
    file(READ "${OUT}/l${lanes}sh2.telemetry.jsonl" tel2)
    if(NOT tel1 STREQUAL tel2)
        message(FATAL_ERROR
            "telemetry diverges: lanes=${lanes} shards=1 vs 2")
    endif()
    string(LENGTH "${tel1}" tel_len)
    if(tel_len LESS 500)
        message(FATAL_ERROR
            "telemetry export suspiciously small (${tel_len} B)")
    endif()
endforeach()

# The merged counter tracks must validate, and samples must be there.
execute_process(
    COMMAND "${CHECK}" "${OUT}/l0sh1.timeline.json"
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE check_out)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "timeline_check failed: ${check_out}")
endif()
if(check_out MATCHES " 0 counter samples")
    message(FATAL_ERROR "no counter samples in timeline: ${check_out}")
endif()
if(NOT check_out MATCHES "counter samples")
    message(FATAL_ERROR
        "timeline_check did not report counters: ${check_out}")
endif()

# Kernel self-profiler rides along whenever telemetry runs sharded.
file(READ "${OUT}/l0sh2.stats.json" stats)
foreach(key "\"windows\"" "\"parallelMs\"" "\"imbalance\"")
    if(NOT stats MATCHES "${key}")
        message(FATAL_ERROR
            "stats JSON missing kernel self-profile key ${key}")
    endif()
endforeach()

# CSV spelling; no timeline here, so phase B stays on real worker
# threads and the profiler must report the barrier-wait arrays.
execute_process(
    COMMAND "${CLI}" --policy co-design --workload WL-5
        --channels 2 --shards 2
        --warmup 2 --measure 4 --seed 7
        --telemetry "${OUT}/export.csv"
        --stats-json "${OUT}/threaded.stats.json"
    RESULT_VARIABLE rc
    OUTPUT_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "refsched_cli CSV telemetry failed (rc=${rc})")
endif()
file(READ "${OUT}/export.csv" csv)
if(NOT csv MATCHES "^tick,")
    message(FATAL_ERROR "telemetry CSV missing header row")
endif()
string(REGEX MATCHALL "\n" csv_newlines "${csv}")
list(LENGTH csv_newlines csv_rows)
if(csv_rows LESS 3)
    message(FATAL_ERROR "telemetry CSV has no data rows (${csv_rows})")
endif()

# Threaded runs must bill the phase-B barrier: a non-empty
# per-worker wait array and a non-zero barrier count.
file(READ "${OUT}/threaded.stats.json" tstats)
if(NOT tstats MATCHES "\"workerWaitMs\": \\[[0-9]")
    message(FATAL_ERROR
        "threaded self-profile missing per-worker barrier waits")
endif()
if(tstats MATCHES "\"barriers\": 0,")
    message(FATAL_ERROR "threaded run recorded zero barriers")
endif()
