# ctest driver for the dynamic-workload scenario engine: run the
# checked-in adversarial-colocation fixture end-to-end with the
# invariant checkers attached and a stats-JSON export, then gate the
# export schema on the new churn/migration counters being present
# and the engine having actually exercised them.
#
# Usage (see tools/CMakeLists.txt):
#   cmake -DCLI=<refsched_cli> -DSCENARIO=<fixture> -DOUT=<dir>
#         -P scenario_smoke.cmake

foreach(var CLI SCENARIO OUT)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "scenario_smoke.cmake needs -D${var}=...")
    endif()
endforeach()

file(MAKE_DIRECTORY "${OUT}")
set(stats "${OUT}/scenario_stats.json")

# warmup=0 keeps the churn quanta inside the measured region so the
# director's counters survive the warm-up stats reset; --validate
# turns any auditor violation into a non-zero exit.
execute_process(
    COMMAND "${CLI}" --policy co-design
        --benchmarks GemsFDTD,stream,GemsFDTD,npb_ua --cores 1
        --density 32 --scale 1024 --warmup 0 --measure 24 --seed 1
        --scenario "${SCENARIO}" --validate --stats-json "${stats}"
    RESULT_VARIABLE rc
    OUTPUT_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "refsched_cli --scenario failed (rc=${rc})")
endif()

# Schema gate: every scenario counter must appear in the export.
file(READ "${stats}" stats_text)
foreach(key
        scenario.spawns scenario.kills scenario.phaseChanges
        scenario.pagesMigrated scenario.migrationReads
        scenario.migrationWrites scenario.pagesTrimmed)
    if(NOT stats_text MATCHES "${key}")
        message(FATAL_ERROR "stats JSON missing ${key}")
    endif()
endforeach()

# Liveness gate: the fixture's kill, spawn and consolidation sweep
# must all have fired.
foreach(key scenario.spawns scenario.kills scenario.pagesMigrated)
    if(stats_text MATCHES "\"${key}\": 0[,\n}]")
        message(FATAL_ERROR "${key} is zero: scenario never ran")
    endif()
endforeach()
