# ctest driver for the observability exporters: run one co-design
# cell with a timeline + stats-json export, then schema-validate the
# timeline and assert the co-design property (no scheduled quantum's
# task footprint overlaps the bank under refresh).
#
# Usage (see tools/CMakeLists.txt):
#   cmake -DCLI=<refsched_cli> -DCHECK=<timeline_check> -DOUT=<dir>
#         -P timeline_smoke.cmake

foreach(var CLI CHECK OUT)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "timeline_smoke.cmake needs -D${var}=...")
    endif()
endforeach()

file(MAKE_DIRECTORY "${OUT}")
set(timeline "${OUT}/codesign_timeline.json")
set(stats "${OUT}/codesign_stats.json")

execute_process(
    COMMAND "${CLI}" --policy co-design --workload WL-5
        --warmup 2 --measure 8 --seed 7
        --timeline "${timeline}" --stats-json "${stats}"
    RESULT_VARIABLE rc
    OUTPUT_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "refsched_cli failed (rc=${rc})")
endif()

execute_process(
    COMMAND "${CHECK}" "${timeline}" --require-clean-picks
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "timeline_check failed (rc=${rc})")
endif()

# The stats export must carry the refresh-overlap latency split: the
# clean histogram is always populated on a run with reads, and both
# histogram keys must be present in the document.
file(READ "${stats}" stats_text)
foreach(key readLatencyClean readLatencyBlocked)
    if(NOT stats_text MATCHES "${key}")
        message(FATAL_ERROR "stats JSON missing ${key}")
    endif()
endforeach()
if(NOT stats_text MATCHES "readLatencyClean\": {\"mean")
    message(FATAL_ERROR "readLatencyClean not an object")
endif()

# An all-bank cell actually blocks reads on refresh, so there the
# blocked histogram must be non-empty too.
set(ab_timeline "${OUT}/allbank_timeline.json")
set(ab_stats "${OUT}/allbank_stats.json")
execute_process(
    COMMAND "${CLI}" --policy all-bank --workload WL-5
        --warmup 2 --measure 8 --seed 7
        --timeline "${ab_timeline}" --stats-json "${ab_stats}"
    RESULT_VARIABLE rc
    OUTPUT_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "refsched_cli (all-bank) failed (rc=${rc})")
endif()
execute_process(
    COMMAND "${CHECK}" "${ab_timeline}"
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "timeline_check (all-bank) failed (rc=${rc})")
endif()
file(READ "${ab_stats}" ab_text)
if(ab_text MATCHES "readLatencyBlocked\": {\"mean\": 0, \"min\": 0, \"max\": 0, \"count\": 0")
    message(FATAL_ERROR "all-bank blocked histogram is empty")
endif()
