/**
 * @file
 * Schema validator for timeline artifacts (obs::TimelineRecorder).
 *
 *   timeline_check TRACE.json [--require-clean-picks]
 *
 * Checks, in order:
 *   1. the file parses as JSON and has the Chrome trace-event shape
 *      ({"traceEvents": [...]}, each event an object with ph/pid/
 *      name, ts on every non-metadata event, dur on complete
 *      events);
 *   2. per track (pid, tid): timestamps are monotonically
 *      non-decreasing in file order and complete ("X") slices do not
 *      overlap;
 *   3. counter ("C") events carry a non-empty args object whose
 *      members are all non-negative numbers, under a known track
 *      name: the controller's "chN queues"/"chN blockedReads"
 *      counters on pid 1, or a telemetry series name
 *      (obs::isKnownTelemetrySeries) on pid 3;
 *   4. with --require-clean-picks (co-design runs): no scheduling
 *      quantum ran a task with pages resident in a bank under
 *      refresh -- every quantum slice's residentInRefreshBanks is 0
 *      and no pick fell back to a dirty task.
 *
 * Exit 0 when all checks pass, 1 on a failed check or malformed
 * input, 2 on usage errors.
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.hh"
#include "obs/telemetry.hh"
#include "simcore/logging.hh"

using namespace refsched;

namespace
{

struct TrackState
{
    double lastTs = -1.0;
    double lastSliceEnd = -1.0;
    std::size_t events = 0;
};

int
fail(std::size_t index, const std::string &what)
{
    std::cerr << "timeline_check: event " << index << ": " << what
              << "\n";
    return 1;
}

/** The TimelineRecorder's own pid-1 counter tracks. */
bool
isLegacyCounterTrack(const std::string &name)
{
    if (name.size() < 3 || name.compare(0, 2, "ch") != 0)
        return false;
    std::size_t i = 2;
    while (i < name.size() && name[i] >= '0' && name[i] <= '9')
        ++i;
    if (i == 2)
        return false;
    const std::string rest = name.substr(i);
    return rest == " queues" || rest == " blockedReads";
}

int
check(const obs::JsonValue &doc, bool requireCleanPicks)
{
    if (!doc.isObject())
        return fail(0, "document is not a JSON object");
    const auto *events = doc.find("traceEvents");
    if (!events || !events->isArray())
        return fail(0, "missing traceEvents array");

    std::map<std::pair<double, double>, TrackState> tracks;
    std::size_t sliceCount = 0, dirtyQuanta = 0, counterCount = 0;

    for (std::size_t i = 0; i < events->array.size(); ++i) {
        const auto &ev = events->array[i];
        if (!ev.isObject())
            return fail(i, "event is not an object");

        const auto *ph = ev.find("ph");
        const auto *pid = ev.find("pid");
        const auto *name = ev.find("name");
        if (!ph || !ph->isString() || ph->string.size() != 1)
            return fail(i, "missing/invalid ph");
        if (!pid || !pid->isNumber())
            return fail(i, "missing/invalid pid");
        if (!name || !name->isString())
            return fail(i, "missing/invalid name");
        const char phase = ph->string[0];
        if (phase != 'M' && phase != 'X' && phase != 'i'
            && phase != 'C')
            return fail(i, std::string("unexpected phase '") + phase
                               + "'");
        if (const auto *args = ev.find("args");
            args && !args->isObject())
            return fail(i, "args is not an object");
        if (phase == 'M')
            continue;

        const auto *ts = ev.find("ts");
        if (!ts || !ts->isNumber())
            return fail(i, "missing/invalid ts");
        const auto *tid = ev.find("tid");
        if (!tid || !tid->isNumber())
            return fail(i, "missing/invalid tid");

        auto &track = tracks[{pid->number, tid->number}];
        ++track.events;
        if (ts->number < track.lastTs)
            return fail(i, "track timestamps not monotonic");
        track.lastTs = ts->number;

        if (phase == 'C') {
            const auto *args = ev.find("args");
            if (!args || !args->isObject() || args->object.empty())
                return fail(i,
                            "counter event needs a non-empty args "
                            "object");
            for (const auto &[key, val] : args->object) {
                if (!val.isNumber())
                    return fail(i, "counter value '" + key
                                       + "' is not a number");
                if (val.number < 0.0)
                    return fail(i, "counter value '" + key
                                       + "' is negative");
            }
            const bool known = pid->number == 3.0
                ? obs::isKnownTelemetrySeries(name->string)
                : isLegacyCounterTrack(name->string);
            if (!known)
                return fail(i, "unknown counter track '"
                                   + name->string + "'");
            ++counterCount;
        }

        if (phase == 'X') {
            const auto *dur = ev.find("dur");
            if (!dur || !dur->isNumber() || dur->number < 0.0)
                return fail(i, "complete event missing/invalid dur");
            // 1e-6 us = 1 ps: below the simulator's tick resolution,
            // absorbing decimal rounding of the exact ps timestamps.
            if (ts->number + 1e-6 < track.lastSliceEnd)
                return fail(i, "overlapping slices on one track");
            track.lastSliceEnd = ts->number + dur->number;
            ++sliceCount;

            if (requireCleanPicks && pid->number == 2.0) {
                const auto *args = ev.find("args");
                const auto *kind =
                    args ? args->find("kind") : nullptr;
                const auto *res = args
                    ? args->find("residentInRefreshBanks")
                    : nullptr;
                const bool dirtyKind = kind && kind->isString()
                    && (kind->string == "fallback"
                        || kind->string == "best-effort");
                const bool dirtyFootprint =
                    res && res->isNumber() && res->number > 0.0;
                if (dirtyKind || dirtyFootprint) {
                    ++dirtyQuanta;
                    std::cerr << "timeline_check: event " << i
                              << ": quantum overlaps refreshing bank"
                              << " (kind="
                              << (kind && kind->isString()
                                      ? kind->string
                                      : "?")
                              << ", resident="
                              << (res && res->isNumber() ? res->number
                                                         : 0.0)
                              << ")\n";
                }
            }
        }
    }

    if (dirtyQuanta > 0) {
        std::cerr << "timeline_check: " << dirtyQuanta
                  << " quanta overlap the bank under refresh\n";
        return 1;
    }

    std::cout << "timeline_check: OK (" << events->array.size()
              << " events, " << tracks.size() << " tracks, "
              << sliceCount << " slices, " << counterCount
              << " counter samples)\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string path;
    bool requireCleanPicks = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--require-clean-picks") == 0) {
            requireCleanPicks = true;
        } else if (path.empty() && argv[i][0] != '-') {
            path = argv[i];
        } else {
            std::cerr << "usage: " << argv[0]
                      << " TRACE.json [--require-clean-picks]\n";
            return 2;
        }
    }
    if (path.empty()) {
        std::cerr << "usage: " << argv[0]
                  << " TRACE.json [--require-clean-picks]\n";
        return 2;
    }

    std::ifstream f(path, std::ios::binary);
    if (!f) {
        std::cerr << "timeline_check: cannot open " << path << "\n";
        return 1;
    }
    std::ostringstream buf;
    buf << f.rdbuf();

    try {
        return check(obs::parseJson(buf.str()), requireCleanPicks);
    } catch (const FatalError &e) {
        std::cerr << "timeline_check: " << e.what() << "\n";
        return 1;
    }
}
