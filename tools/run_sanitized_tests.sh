#!/usr/bin/env bash
#
# Build and run the test suite under ASan+UBSan and under TSan.
#
#   tools/run_sanitized_tests.sh [jobs]
#
# The ASan pass catches memory errors and UB across the whole suite;
# the TSan pass targets the parallel experiment runner first (the
# only multi-threaded subsystem), then runs the full suite anyway --
# races can hide behind any entry point that constructs a runner.

set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

run_pass() {
    local name="$1" sanitize="$2" dir="build-$1"
    echo "=== ${name}: configure + build (${dir}) ==="
    cmake -B "$dir" -S . \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DREFSCHED_SANITIZE="$sanitize"
    cmake --build "$dir" -j "$JOBS"
}

run_pass asan address
echo "=== asan: ctest ==="
ctest --test-dir build-asan --output-on-failure -j "$JOBS"

run_pass tsan thread
echo "=== tsan: parallel-runner determinism suite ==="
ctest --test-dir build-tsan --output-on-failure -R 'ParallelRunner|GoldenTraceJobs'
echo "=== tsan: full suite ==="
ctest --test-dir build-tsan --output-on-failure -j "$JOBS"

echo "all sanitizer passes clean"
