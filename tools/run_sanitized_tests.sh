#!/usr/bin/env bash
#
# Build and run the test suite under ASan+UBSan and under TSan.
#
#   tools/run_sanitized_tests.sh [jobs]
#
# The ASan pass catches memory errors and UB across the whole suite;
# the TSan pass targets the parallel experiment runner first (the
# only multi-threaded subsystem), then runs the full suite anyway --
# races can hide behind any entry point that constructs a runner.

set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

run_pass() {
    local name="$1" sanitize="$2" dir="build-$1"
    echo "=== ${name}: configure + build (${dir}) ==="
    cmake -B "$dir" -S . \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DREFSCHED_SANITIZE="$sanitize"
    cmake --build "$dir" -j "$JOBS"
}

# One observability export per policy: the timeline recorder, stats
# JSON writer, and JSON parser all run allocation-heavy string paths
# that only sanitizers audit properly.  timeline_check re-parses each
# artifact so the exporter and the validator cover each other.
obs_smoke() {
    local dir="$1" out="$1/obs-smoke"
    mkdir -p "$out"
    for policy in all-bank per-bank per-bank-ooo ddr4-2x ddr4-4x \
            adaptive co-design no-refresh; do
        echo "--- ${dir}: --stats-json/--timeline smoke (${policy}) ---"
        "./$dir/tools/refsched_cli" --policy "$policy" --workload WL-5 \
            --warmup 1 --measure 4 --seed 7 \
            --timeline "$out/$policy.timeline.json" \
            --stats-json "$out/$policy.stats.json" >/dev/null
        "./$dir/tools/timeline_check" "$out/$policy.timeline.json"
    done
}

# The scenario engine's churn/migration paths free and reallocate
# task address spaces mid-run -- prime use-after-free territory that
# only the sanitizers audit.  The CLI run drives the checked-in
# adversarial-colocation fixture end-to-end under validation.
scenario_smoke() {
    local dir="$1" out="$1/scenario-smoke"
    mkdir -p "$out"
    echo "--- ${dir}: --scenario fixture run (churn + migration) ---"
    "./$dir/tools/refsched_cli" --policy co-design \
        --benchmarks GemsFDTD,stream,GemsFDTD,npb_ua --cores 1 \
        --density 32 --scale 1024 --warmup 0 --measure 24 --seed 1 \
        --scenario tests/validate/data/adversarial_colocation.scenario \
        --validate \
        --stats-json "$out/scenario.stats.json" >/dev/null
}

# Telemetry samples counters from the phase-C boundary hook while
# the run stays on real worker threads (unlike a probe, telemetry
# does not force workers=1), then walks the string-heavy JSONL/CSV
# exporters -- both sides are sanitizer targets.  The self-profiler
# also arms here, timing the phase-B barrier it samples behind.
telemetry_smoke() {
    local dir="$1" out="$1/telemetry-smoke"
    mkdir -p "$out"
    echo "--- ${dir}: --telemetry sampled export (threaded kernel) ---"
    "./$dir/tools/refsched_cli" --policy co-design --workload WL-5 \
        --scale 1024 --channels 2 --shards 2 --core-lanes 2 \
        --warmup 1 --measure 8 --seed 7 \
        --serving "arrival=mmpp,load=0.4,pool=4,queue=16,lines=4" \
        --telemetry "$out/telemetry.jsonl" \
        --stats-json "$out/telemetry.stats.json" >/dev/null
    "./$dir/tools/refsched_cli" --policy co-design --workload WL-5 \
        --scale 1024 --channels 2 --warmup 1 --measure 8 --seed 7 \
        --telemetry "$out/telemetry.csv" >/dev/null
}

# The open-loop serving injector shares slot/backlog state between
# the main-lane arrival path and per-line completions delivered from
# channel lanes, and its per-line blocked flags are written by the
# controller -- pointer-lifetime and (under the threaded kernel)
# data-race territory the sanitizers own.  Overload parameters keep
# the drop and retry paths hot.
serving_smoke() {
    local dir="$1" out="$1/serving-smoke"
    mkdir -p "$out"
    echo "--- ${dir}: --serving open-loop run (overload, drops) ---"
    "./$dir/tools/refsched_cli" --policy co-design --workload WL-5 \
        --scale 1024 --channels 2 --warmup 0 --measure 24 --seed 7 \
        --serving "arrival=mmpp,load=6.4,pool=2,queue=2,lines=4" \
        --validate \
        --stats-json "$out/serving.stats.json" >/dev/null
}

run_pass asan address
echo "=== asan: ctest ==="
ctest --test-dir build-asan --output-on-failure -j "$JOBS"
echo "=== asan: per-policy observability exports ==="
obs_smoke build-asan
echo "=== asan: scenario engine (churn + page migration) ==="
scenario_smoke build-asan
echo "=== asan: open-loop serving (drops + retry paths) ==="
serving_smoke build-asan
echo "=== asan: sampled telemetry (boundary-hook sampling + exports) ==="
telemetry_smoke build-asan
echo "=== asan: differential fuzz (corpus replay + short random run) ==="
# The randomized samples drive every refresh policy through configs
# the fixed tests never reach -- exactly where sanitizers earn their
# keep.  Shrinking is disabled: a sanitizer abort is its own repro.
./build-asan/tools/fuzz_policies --replay-dir tests/fuzz/corpus \
    --samples 25 --seed 7 --shrink-budget 0

run_pass tsan thread
echo "=== tsan: parallel-runner + sharded-kernel determinism suites ==="
# ShardIdentityTest runs the channel lanes on real worker threads
# (no probe attached) and asserts bit-identity with the sequential
# run -- the primary TSan target for the sharded kernel.
ctest --test-dir build-tsan --output-on-failure \
    -R 'ParallelRunner|GoldenTraceJobs|ShardIdentity|ScenarioIntegration'
echo "=== tsan: sharded CLI run (real worker threads) ==="
# No --timeline here: attaching a probe forces workers=1, and the
# point of this pass is the threaded phase-B path.
mkdir -p build-tsan/shard-smoke
./build-tsan/tools/refsched_cli --policy co-design --workload WL-5 \
    --channels 2 --shards 2 --warmup 1 --measure 4 --seed 7 \
    --stats-json build-tsan/shard-smoke/sh2.stats.json >/dev/null
echo "=== tsan: core-lane CLI run (cluster lanes on worker threads) ==="
# Core-cluster lanes put every core's issue loop and L1 on its own
# worker thread concurrently with the channel lanes -- the widest
# threaded surface in the kernel.  Stats-only for the same reason as
# above: a probe would force workers=1.
./build-tsan/tools/refsched_cli --policy co-design --workload WL-5 \
    --channels 2 --shards 2 --core-lanes 2 --warmup 1 --measure 4 \
    --seed 7 \
    --stats-json build-tsan/shard-smoke/cl2.stats.json >/dev/null
echo "=== tsan: core-lane scenario run (churn crossing clusters) ==="
# Churn + migration while cluster lanes run: spawns/kills re-home
# tasks across clusters at quantum boundaries, and migration copy
# traffic crosses the per-core staging boxes.
./build-tsan/tools/refsched_cli --policy co-design \
    --benchmarks GemsFDTD,stream,GemsFDTD,npb_ua --cores 2 \
    --density 32 --scale 1024 --channels 2 --core-lanes 2 \
    --warmup 0 --measure 24 --seed 1 \
    --scenario tests/validate/data/adversarial_colocation.scenario \
    --validate \
    --stats-json build-tsan/shard-smoke/cl-scenario.stats.json \
    >/dev/null
echo "=== tsan: sharded scenario run (migration on worker threads) ==="
# Migration copy completions route through the sharded kernel's main
# lane; churn while phase-B workers drain the channel lanes is the
# adversarial interleaving for the director's bookkeeping.
./build-tsan/tools/refsched_cli --policy co-design \
    --benchmarks GemsFDTD,stream,GemsFDTD,npb_ua --cores 1 \
    --density 32 --scale 1024 --channels 2 --shards 2 \
    --warmup 0 --measure 24 --seed 1 \
    --scenario tests/validate/data/adversarial_colocation.scenario \
    --validate \
    --stats-json build-tsan/shard-smoke/scenario.stats.json >/dev/null
echo "=== tsan: serving on the partitioned kernel (worker threads) ==="
# Serving arrivals stage on the main lane while channel lanes
# complete the per-line reads and write the per-line blocked flags
# concurrently -- the exact cross-lane surface the flat byte array
# exists for.  Stats-only (a probe would force workers=1).
./build-tsan/tools/refsched_cli --policy co-design --workload WL-5 \
    --scale 1024 --channels 2 --shards 2 --core-lanes 2 \
    --warmup 0 --measure 24 --seed 7 \
    --serving "arrival=mmpp,load=1.6,pool=8,queue=64,lines=4" \
    --stats-json build-tsan/shard-smoke/serving.stats.json >/dev/null
echo "=== tsan: telemetry on the threaded kernel (boundary sampling) ==="
# Telemetry is the one observability consumer that keeps phase-B
# workers threaded: the boundary hook reads channel/core counters
# that worker threads wrote moments earlier, and the self-profiler
# reads worker finish stamps across the barrier -- both are ordering
# claims TSan can falsify.
telemetry_smoke build-tsan
echo "=== tsan: scenario engine (churn + page migration) ==="
scenario_smoke build-tsan
echo "=== tsan: open-loop serving (drops + retry paths) ==="
serving_smoke build-tsan
echo "=== tsan: full suite ==="
ctest --test-dir build-tsan --output-on-failure -j "$JOBS"
echo "=== tsan: per-policy observability exports ==="
obs_smoke build-tsan
echo "=== tsan: fuzz system sweep (parallel policy workers) ==="
# System-mode samples run the policy sweep on worker threads and
# cross-check jobs=1 vs jobs=N traces -- the fuzzer is itself a
# race detector target.
./build-tsan/tools/fuzz_policies --mode system --samples 5 --seed 11 \
    --shrink-budget 0

echo "all sanitizer passes clean"
