# ctest driver for the core-cluster lane kernel: run the same
# 2-channel co-design cell with --core-lanes 1 (one cluster lane for
# all cores), 2 (one lane per core on the 2-core workload), and 8
# (oversubscribed; clamps to the core count), plus a channel-sharded
# combination, then assert the exported artifacts are byte-identical
# -- lane count, worker count and channel sharding are partition
# invariants of the lane-mode kernel:
#
#   timeline    compared verbatim (integer microsecond timestamps,
#               no host-dependent fields)
#   stats JSON  compared minus the selfProfile line, the only
#               host-wall-clock field in the document
#
# --core-lanes 0 is the legacy kernel -- a distinct timing mode, so
# it is not compared against the lane runs; instead it is run twice
# and checked for byte-exact determinism (i.e. the lane machinery
# left it untouched and reproducible).
#
# Usage (see tools/CMakeLists.txt):
#   cmake -DCLI=<refsched_cli> -DOUT=<dir> -P core_lane_smoke.cmake

foreach(var CLI OUT)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "core_lane_smoke.cmake needs -D${var}=...")
    endif()
endforeach()

file(MAKE_DIRECTORY "${OUT}")

function(run_cell tag)
    execute_process(
        COMMAND "${CLI}" --policy co-design --workload WL-5
            --channels 2 --warmup 2 --measure 8 --seed 7
            ${ARGN}
            --timeline "${OUT}/${tag}.timeline.json"
            --stats-json "${OUT}/${tag}.stats.json"
        RESULT_VARIABLE rc
        OUTPUT_QUIET)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "refsched_cli ${tag} failed (rc=${rc})")
    endif()
endfunction()

run_cell(cl1 --core-lanes 1)
run_cell(cl2 --core-lanes 2)
run_cell(cl8 --core-lanes 8)
run_cell(cl2sh2 --core-lanes 2 --shards 2)
run_cell(cl8sh2 --core-lanes 8 --shards 2)
run_cell(cl0a --core-lanes 0)
run_cell(cl0b --core-lanes 0)

# Strip the host-dependent self-profile line from a stats export.
function(read_stats_stripped path outvar)
    file(READ "${path}" text)
    string(REGEX REPLACE "\"selfProfile\"[^\n]*" "" text "${text}")
    set(${outvar} "${text}" PARENT_SCOPE)
endfunction()

read_stats_stripped("${OUT}/cl1.stats.json" stats_ref)
file(READ "${OUT}/cl1.timeline.json" tl_ref)

foreach(tag cl2 cl8)
    read_stats_stripped("${OUT}/${tag}.stats.json" stats_n)
    if(NOT stats_ref STREQUAL stats_n)
        message(FATAL_ERROR
            "stats JSON diverges: core-lanes 1 vs ${tag}")
    endif()
    file(READ "${OUT}/${tag}.timeline.json" tl_n)
    if(NOT tl_ref STREQUAL tl_n)
        message(FATAL_ERROR
            "timeline diverges: core-lanes 1 vs ${tag}")
    endif()
endforeach()

# Channel sharding on top of lanes keeps every stat identical; the
# timeline's same-tick record order moves with the controller onto
# the channel lanes (exactly as in the lanes=0 seed, where shards=0
# and shards>=1 are distinct record orders), so timelines compare
# within the sharded subgroup: lanes 2 vs lanes 8 at shards=2.
read_stats_stripped("${OUT}/cl2sh2.stats.json" stats_sh2)
read_stats_stripped("${OUT}/cl8sh2.stats.json" stats_sh8)
if(NOT stats_ref STREQUAL stats_sh2)
    message(FATAL_ERROR
        "stats JSON diverges: core-lanes 2 vs core-lanes 2 + shards 2")
endif()
if(NOT stats_ref STREQUAL stats_sh8)
    message(FATAL_ERROR
        "stats JSON diverges: core-lanes 2 vs core-lanes 8 + shards 2")
endif()
file(READ "${OUT}/cl2sh2.timeline.json" tl_sh2)
file(READ "${OUT}/cl8sh2.timeline.json" tl_sh8)
if(NOT tl_sh2 STREQUAL tl_sh8)
    message(FATAL_ERROR
        "timeline diverges: shards=2 core-lanes 2 vs core-lanes 8")
endif()

# Legacy determinism: two --core-lanes 0 runs must agree exactly.
read_stats_stripped("${OUT}/cl0a.stats.json" stats0a)
read_stats_stripped("${OUT}/cl0b.stats.json" stats0b)
if(NOT stats0a STREQUAL stats0b)
    message(FATAL_ERROR "legacy (--core-lanes 0) stats not reproducible")
endif()
file(READ "${OUT}/cl0a.timeline.json" tl0a)
file(READ "${OUT}/cl0b.timeline.json" tl0b)
if(NOT tl0a STREQUAL tl0b)
    message(FATAL_ERROR "legacy (--core-lanes 0) timeline not reproducible")
endif()

# The exports must not be trivially empty for the identity to mean
# anything.
string(LENGTH "${tl_ref}" tl_len)
if(tl_len LESS 1000)
    message(FATAL_ERROR "timeline suspiciously small (${tl_len} B)")
endif()
