/**
 * @file
 * Golden-trace differential harness driver.
 *
 *   golden_diff record --out FILE [--workload WL-8] [--policy P]
 *                      [--density G] [--scale N] [--warmup Q]
 *                      [--measure Q]
 *       run one experiment with a trace recorder attached and write
 *       the event stream to FILE
 *
 *   golden_diff diff FILE1 FILE2
 *       compare two recorded traces; exit 0 when identical, 1 with a
 *       first-divergence report otherwise
 *
 *   golden_diff jobs-check [--jobs N] [--workload WL-8] [--scale N]
 *                          [--warmup Q] [--measure Q]
 *       run a small policy grid sequentially (--jobs 1) and again
 *       with N workers, and verify every cell's event stream is
 *       byte-identical -- the determinism contract of the parallel
 *       runner, checked at event granularity
 */

#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "core/parallel_runner.hh"
#include "core/system.hh"
#include "validate/golden_trace.hh"

using namespace refsched;

namespace
{

struct Options
{
    std::string out;
    std::string workload = "WL-8";
    core::Policy policy = core::Policy::CoDesign;
    int densityGb = 32;
    unsigned timeScale = 1024;
    int warmupQuanta = 2;
    int measureQuanta = 8;
    int jobs = 8;
};

[[noreturn]] void
usage(const char *argv0, const std::string &error = "")
{
    if (!error.empty())
        std::cerr << "error: " << error << "\n\n";
    std::cerr
        << "usage: " << argv0 << " record --out FILE [options]\n"
        << "       " << argv0 << " diff FILE1 FILE2\n"
        << "       " << argv0 << " jobs-check [--jobs N] [options]\n\n"
        << "options:\n"
        << "  --workload NAME   Table 2 workload (default WL-8)\n"
        << "  --policy P        all-bank | per-bank | co-design | ..."
           " (record only)\n"
        << "  --density G       8 | 16 | 24 | 32 (default 32)\n"
        << "  --scale N         timeScale (default 1024)\n"
        << "  --warmup Q        warm-up quanta (default 2)\n"
        << "  --measure Q       measured quanta (default 8)\n"
        << "  --jobs N          parallel worker count to check"
           " against sequential (default 8)\n";
    std::exit(2);
}

core::Policy
parsePolicy(const std::string &s, const char *argv0)
{
    for (auto p : {core::Policy::AllBank, core::Policy::PerBank,
                   core::Policy::PerBankOoo, core::Policy::Ddr4x2,
                   core::Policy::Ddr4x4, core::Policy::Adaptive,
                   core::Policy::CoDesign, core::Policy::NoRefresh}) {
        if (core::toString(p) == s)
            return p;
    }
    usage(argv0, "unknown policy: " + s);
}

Options
parse(int argc, char **argv, int first)
{
    Options o;
    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage(argv[0], std::string(argv[i]) + " needs a value");
        return argv[++i];
    };
    for (int i = first; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--out")
            o.out = need(i);
        else if (a == "--workload")
            o.workload = need(i);
        else if (a == "--policy")
            o.policy = parsePolicy(need(i), argv[0]);
        else if (a == "--density")
            o.densityGb = std::atoi(need(i));
        else if (a == "--scale")
            o.timeScale = static_cast<unsigned>(std::atoi(need(i)));
        else if (a == "--warmup")
            o.warmupQuanta = std::atoi(need(i));
        else if (a == "--measure")
            o.measureQuanta = std::atoi(need(i));
        else if (a == "--jobs")
            o.jobs = std::atoi(need(i));
        else
            usage(argv[0], "unknown option: " + a);
    }
    return o;
}

core::SystemConfig
cellConfig(const Options &o, core::Policy policy)
{
    return core::makeConfig(
        o.workload, policy, static_cast<dram::DensityGb>(o.densityGb),
        milliseconds(64.0), 2, 4, o.timeScale);
}

int
cmdRecord(const Options &o, const char *argv0)
{
    if (o.out.empty())
        usage(argv0, "record needs --out FILE");
    validate::TraceRecorder rec;
    core::System sys(cellConfig(o, o.policy));
    sys.attachProbe(&rec);
    sys.run(o.warmupQuanta, o.measureQuanta);
    validate::writeTraceFile(o.out, rec);
    std::cout << o.out << ": " << rec.eventCount() << " events, "
              << rec.data().size() << " payload bytes\n";
    return 0;
}

int
cmdDiff(const std::string &a, const std::string &b)
{
    const auto ta = validate::readTraceFile(a);
    const auto tb = validate::readTraceFile(b);
    const auto d = validate::diffTraces(ta, tb);
    if (d.identical) {
        std::cout << "identical (" << ta.size() << " events)\n";
        return 0;
    }
    std::cout << d.describe() << "\n";
    return 1;
}

int
cmdJobsCheck(const Options &o)
{
    const std::vector<core::Policy> policies{core::Policy::AllBank,
                                             core::Policy::PerBank,
                                             core::Policy::CoDesign};

    // One recorder per (run, cell).  Cells are self-contained
    // thunks: each builds its own System and feeds its own recorder,
    // so the parallel run touches no shared mutable state.
    auto runGrid = [&](int jobs,
                       std::vector<validate::TraceRecorder> &recs) {
        recs = std::vector<validate::TraceRecorder>(policies.size());
        std::vector<core::CellSpec> cells;
        for (std::size_t i = 0; i < policies.size(); ++i) {
            core::CellSpec cell;
            auto *rec = &recs[i];
            const auto cfg = cellConfig(o, policies[i]);
            cell.custom = [cfg, rec, &o] {
                core::System sys(cfg);
                sys.attachProbe(rec);
                return sys.run(o.warmupQuanta, o.measureQuanta);
            };
            cells.push_back(std::move(cell));
        }
        core::ParallelRunner(jobs).runCells(cells);
    };

    std::vector<validate::TraceRecorder> seq, par;
    runGrid(1, seq);
    runGrid(o.jobs, par);

    bool ok = true;
    for (std::size_t i = 0; i < policies.size(); ++i) {
        const std::string label =
            o.workload + "/" + core::toString(policies[i]);
        if (seq[i].data() == par[i].data()) {
            std::cout << label << ": identical ("
                      << seq[i].eventCount() << " events)\n";
            continue;
        }
        ok = false;
        const auto d = validate::diffTraces(
            validate::decodeTrace(seq[i].data()),
            validate::decodeTrace(par[i].data()));
        std::cout << label << ": DIVERGED (--jobs 1 vs --jobs "
                  << o.jobs << ")\n  " << d.describe() << "\n";
    }
    return ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        usage(argv[0]);
    const std::string cmd = argv[1];

    try {
        if (cmd == "record")
            return cmdRecord(parse(argc, argv, 2), argv[0]);
        if (cmd == "diff") {
            if (argc != 4)
                usage(argv[0], "diff needs exactly two files");
            return cmdDiff(argv[2], argv[3]);
        }
        if (cmd == "jobs-check")
            return cmdJobsCheck(parse(argc, argv, 2));
        usage(argv[0], "unknown command: " + cmd);
    } catch (const FatalError &e) {
        std::cerr << "fatal: " << e.what() << "\n";
        return 1;
    }
}
