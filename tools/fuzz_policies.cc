/**
 * @file
 * Cross-policy differential fuzzer driver.
 *
 *   fuzz_policies --samples 200 --seed 1
 *   fuzz_policies --replay tests/fuzz/corpus/cadence-....txt
 *   fuzz_policies --replay-dir tests/fuzz/corpus
 *
 * Draws seeded random system configurations and workloads, runs
 * every refresh policy on each with all invariant checkers armed,
 * and cross-checks the differential oracles (exact per-window
 * refresh cadence, no-refresh IPC dominance, co-design stall-free
 * pick guarantee, jobs=1 vs jobs=N trace identity).  Failing
 * samples are greedily minimized and written as self-contained
 * key=value repro files.
 *
 * Exit code 0 when every sample and replay is clean, 1 on any
 * oracle violation, 2 on usage errors.
 */

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "simcore/logging.hh"
#include "validate/fuzz/fuzz_runner.hh"

using namespace refsched;
using namespace refsched::validate::fuzz;

namespace
{

[[noreturn]] void
usage(const char *argv0, const std::string &error = "")
{
    if (!error.empty())
        std::cerr << "error: " << error << "\n\n";
    std::cerr
        << "usage: " << argv0 << " [options]\n"
        << "  --samples N         random samples to draw (default 100)\n"
        << "  --seed S            sampler seed (default 1)\n"
        << "  --jobs J            worker threads per sweep (default auto)\n"
        << "  --mode KIND         cadence | system | both (default both)\n"
        << "  --shrink-budget S   seconds to minimize each failure\n"
        << "                      (default 20, 0 disables)\n"
        << "  --corpus-dir DIR    write failing samples to DIR\n"
        << "  --replay FILE       re-check one corpus file\n"
        << "  --replay-dir DIR    re-check every *.txt in DIR\n";
    std::exit(error.empty() ? 0 : 2);
}

} // namespace

int
main(int argc, char **argv)
{
    FuzzOptions opts;
    std::vector<std::string> replays;
    std::string replayDir;
    bool samplesSet = false;

    const auto value = [&](int &i) -> std::string {
        if (i + 1 >= argc)
            usage(argv[0], std::string(argv[i]) + " needs a value");
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        try {
            if (!std::strcmp(arg, "--samples")) {
                opts.samples = std::stoi(value(i));
                samplesSet = true;
            }
            else if (!std::strcmp(arg, "--seed"))
                opts.seed = std::stoull(value(i));
            else if (!std::strcmp(arg, "--jobs"))
                opts.jobs = std::stoi(value(i));
            else if (!std::strcmp(arg, "--mode"))
                opts.onlyKind = value(i);
            else if (!std::strcmp(arg, "--shrink-budget"))
                opts.shrinkBudgetSec = std::stod(value(i));
            else if (!std::strcmp(arg, "--corpus-dir"))
                opts.corpusDir = value(i);
            else if (!std::strcmp(arg, "--replay"))
                replays.push_back(value(i));
            else if (!std::strcmp(arg, "--replay-dir"))
                replayDir = value(i);
            else if (!std::strcmp(arg, "--help")
                     || !std::strcmp(arg, "-h"))
                usage(argv[0]);
            else
                usage(argv[0], std::string("unknown option ") + arg);
        } catch (const std::invalid_argument &) {
            usage(argv[0], std::string("bad value for ") + arg);
        } catch (const std::out_of_range &) {
            usage(argv[0], std::string("bad value for ") + arg);
        }
    }
    if (!opts.onlyKind.empty() && opts.onlyKind != "cadence"
        && opts.onlyKind != "system" && opts.onlyKind != "both") {
        usage(argv[0], "bad --mode " + opts.onlyKind);
    }
    if (opts.onlyKind == "both")
        opts.onlyKind.clear();

    // Thousands of short simulations make the library's per-run
    // warnings (footprint scaling, zero-IPC tasks in short
    // intervals) pure noise; the oracles report what matters.
    setLogLevel(LogLevel::Quiet);

    try {
        if (!replayDir.empty()) {
            std::vector<std::string> files;
            for (const auto &entry :
                 std::filesystem::directory_iterator(replayDir)) {
                if (entry.path().extension() == ".txt")
                    files.push_back(entry.path().string());
            }
            std::sort(files.begin(), files.end());
            if (files.empty())
                usage(argv[0], "no *.txt corpus files in " + replayDir);
            replays.insert(replays.end(), files.begin(), files.end());
        }

        int failed = 0;
        for (const auto &path : replays) {
            if (!replayFile(path, opts.jobs, std::cout).empty())
                ++failed;
        }

        // Replay-only invocations skip the random sweep unless the
        // caller explicitly asked for samples as well.
        if ((replays.empty() || samplesSet) && opts.samples > 0) {
            const auto report = runFuzz(opts, std::cout);
            failed += report.failedSamples;
        }
        return failed ? 1 : 0;
    } catch (const FatalError &e) {
        std::cerr << "fatal: " << e.what() << "\n";
        return 2;
    }
}
