# ctest driver for the sharded event kernel: run the same 2-channel
# co-design cell with shards=1 (channel lanes on the caller's
# thread), shards=2 (one worker thread per channel), and shards=8
# (oversubscribed; clamps to 2), then assert the exported artifacts
# are byte-identical:
#
#   timeline    compared verbatim (integer microsecond timestamps,
#               no host-dependent fields)
#   stats JSON  compared minus the selfProfile line, the only
#               host-wall-clock field in the document
#
# Usage (see tools/CMakeLists.txt):
#   cmake -DCLI=<refsched_cli> -DOUT=<dir> -P shard_smoke.cmake

foreach(var CLI OUT)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "shard_smoke.cmake needs -D${var}=...")
    endif()
endforeach()

file(MAKE_DIRECTORY "${OUT}")

foreach(shards 1 2 8)
    execute_process(
        COMMAND "${CLI}" --policy co-design --workload WL-5
            --channels 2 --shards ${shards}
            --warmup 2 --measure 8 --seed 7
            --timeline "${OUT}/sh${shards}.timeline.json"
            --stats-json "${OUT}/sh${shards}.stats.json"
        RESULT_VARIABLE rc
        OUTPUT_QUIET)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
            "refsched_cli --shards ${shards} failed (rc=${rc})")
    endif()
endforeach()

# Strip the host-dependent self-profile line from a stats export.
function(read_stats_stripped path outvar)
    file(READ "${path}" text)
    string(REGEX REPLACE "\"selfProfile\"[^\n]*" "" text "${text}")
    set(${outvar} "${text}" PARENT_SCOPE)
endfunction()

read_stats_stripped("${OUT}/sh1.stats.json" stats1)
file(READ "${OUT}/sh1.timeline.json" tl1)

foreach(shards 2 8)
    read_stats_stripped("${OUT}/sh${shards}.stats.json" stats_n)
    if(NOT stats1 STREQUAL stats_n)
        message(FATAL_ERROR
            "stats JSON diverges: shards=1 vs shards=${shards}")
    endif()
    file(READ "${OUT}/sh${shards}.timeline.json" tl_n)
    if(NOT tl1 STREQUAL tl_n)
        message(FATAL_ERROR
            "timeline diverges: shards=1 vs shards=${shards}")
    endif()
endforeach()

# The exports must not be trivially empty for the identity to mean
# anything.
string(LENGTH "${tl1}" tl_len)
if(tl_len LESS 1000)
    message(FATAL_ERROR "timeline suspiciously small (${tl_len} B)")
endif()
